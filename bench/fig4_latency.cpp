// Figure 4: sample-sort communication time as hardware latency varies.
//
// The QSM prediction columns come from the *default* machine's calibration
// and therefore do not move as l grows — the paper's point is that measured
// curves converge onto those latency-blind predictions once n is large
// enough for pipelining to hide l.
#include <cstdio>
#include <vector>

#include "algos/samplesort.hpp"
#include "support/ascii_chart.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "models/calibration.hpp"
#include "models/predictors.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_fig4_latency",
                          "Figure 4: sample sort measured communication vs "
                          "QSM predictions as latency is varied");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size");
  args.flag_i64("nmax", 1 << 18, "largest problem size");
  args.flag_str("lat-multipliers", "1,8,32,128",
                "comma-separated multipliers applied to hardware latency");
  if (!args.parse(argc, argv)) return 0;
  auto cfg = bench::read_common_flags(args);

  const auto multipliers = bench::parse_csv_i64(args.str("lat-multipliers"));

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Figure 4: latency sweep", cfg, cal);
  const int p = cfg.machine.p;

  // Stage 1: submit the (n, multiplier, rep) grid.
  harness::SweepRunner runner(bench::runner_options(cfg, "fig4_latency"));
  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")));
  for (const std::uint64_t n : sizes) {
    for (const long long m : multipliers) {
      auto variant = cfg.machine;
      variant.net.latency *= m;
      for (int rep = 0; rep < cfg.reps; ++rep) {
        harness::KeyBuilder key("samplesort");
        key.add("machine", variant);
        key.add("n", n);
        key.add("seed", cfg.seed);
        key.add("rep", rep);
        key.add("keyseed", 7);
        runner.submit(key.build(), [&cfg, variant, n, rep] {
          rt::Runtime runtime(
              variant,
              rt::Options{.seed = cfg.seed + static_cast<std::uint64_t>(rep)});
          auto data = runtime.alloc<std::int64_t>(n);
          runtime.host_fill(
              data,
              bench::scratch_keys(
                  n, cfg.seed + n * 7 + static_cast<std::uint64_t>(rep)));
          harness::PointResult out;
          out.timing = algos::sample_sort(runtime, data).timing;
          return out;
        });
      }
    }
  }
  const auto results = runner.run_all();

  // Stage 2: fold into one row per n with one measured column per
  // multiplier.
  std::vector<std::string> headers{"n", "best(QSM)", "whp(QSM)"};
  for (const long long m : multipliers) {
    headers.push_back("meas l*" + std::to_string(m));
  }
  support::TextTable table(headers);
  for (std::size_t col = 1; col < headers.size(); ++col) {
    table.set_precision(col, 0);
  }

  std::vector<double> xs, whp_line;
  std::vector<std::vector<double>> meas(multipliers.size());
  std::size_t at = 0;
  for (const std::uint64_t n : sizes) {
    std::vector<support::Cell> row;
    row.push_back(static_cast<long long>(n));
    row.push_back(
        models::samplesort_comm(cal, n, p, models::samplesort_best_skew(n, p))
            .qsm);
    row.push_back(models::samplesort_comm(
                      cal, n, p, models::samplesort_whp_skew(n, p))
                      .qsm);
    xs.push_back(static_cast<double>(n));
    whp_line.push_back(std::get<double>(row[2]));
    for (std::size_t s = 0; s < multipliers.size(); ++s) {
      double comm = 0;
      for (int rep = 0; rep < cfg.reps; ++rep, ++at) {
        comm += static_cast<double>(results[at].timing.comm_cycles);
      }
      row.push_back(comm / cfg.reps);
      meas[s].push_back(comm / cfg.reps);
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, cfg);

  support::AsciiChart chart({.width = 68,
                             .height = 18,
                             .log_x = true,
                             .log_y = true,
                             .x_label = "n",
                             .y_label = "comm cycles"});
  chart.add_series("whp(QSM)", xs, whp_line);
  for (std::size_t s = 0; s < multipliers.size(); ++s) {
    chart.add_series("l*" + std::to_string(multipliers[s]), xs, meas[s]);
  }
  std::printf("%s\n", chart.render().c_str());
  std::printf(
      "expected shape: higher latency columns start far above whp(QSM) at "
      "small n and converge toward the (latency-blind) predictions as n "
      "grows.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
