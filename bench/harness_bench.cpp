// Scheduler benchmark: measures the experiment harness itself.
//
// Times a synthetic sample-sort grid through the SweepRunner three ways —
// cold with one job, cold across a --jobs scaling curve, and warm from the
// result cache — and emits the numbers as machine-readable JSON
// (BENCH_harness.json) plus a human-readable table. The grid is the same
// shape the figure regenerators submit, so points/sec here is the unit the
// regen pipeline's wall-clock is made of.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/exec.hpp"
#include "core/runtime.hpp"
#include "support/json.hpp"

namespace {

using namespace qsm;

struct GridTiming {
  double seconds{0};
  std::size_t computed{0};
  std::size_t cached{0};
};

/// Runs the synthetic grid once against `cache_dir` and times run_all.
GridTiming run_grid(const bench::CommonConfig& cfg, int points, int jobs,
                    std::uint64_t n, const std::string& cache_dir) {
  harness::RunnerOptions opts;
  opts.workload = "harness_bench";
  opts.jobs = jobs;
  opts.cache = true;
  opts.cache_dir = cache_dir;
  harness::SweepRunner runner(opts);
  for (int i = 0; i < points; ++i) {
    harness::KeyBuilder key("samplesort");
    key.add("machine", cfg.machine);
    key.add("n", n);
    key.add("seed", cfg.seed);
    key.add("rep", i);
    runner.submit(key.build(), [&cfg, n, i] {
      rt::Runtime runtime(
          cfg.machine,
          rt::Options{.seed = cfg.seed + static_cast<std::uint64_t>(i)});
      auto data = runtime.alloc<std::int64_t>(n);
      runtime.host_fill(
          data, bench::scratch_keys(
                    n, cfg.seed + n * 31 + static_cast<std::uint64_t>(i)));
      harness::PointResult out;
      out.timing = algos::sample_sort(runtime, data).timing;
      return out;
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = runner.run_all();
  const auto t1 = std::chrono::steady_clock::now();
  GridTiming t;
  t.seconds = std::chrono::duration<double>(t1 - t0).count();
  t.computed = runner.stats().computed;
  t.cached = runner.stats().cached;
  return t;
}

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_harness",
                          "scheduler/cache benchmark: points/sec, cold vs "
                          "warm, --jobs scaling");
  bench::register_common_flags(args);
  args.flag_i64("points", 24, "grid points in the synthetic sweep");
  args.flag_i64("n", 1 << 14, "sample-sort size per grid point");
  args.flag_str("jobs-curve", "1,2,4,8",
                "comma-separated job counts for the scaling curve");
  args.flag_bool("allow-oversubscribe", false,
                 "run jobs-curve entries above the host thread budget "
                 "instead of clamping them");
  args.flag_str("out", "BENCH_harness.json", "machine-readable output file");
  args.flag_str("scratch", "outputs/.bench_harness_scratch",
                "scratch directory for throwaway cache files");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const int points = static_cast<int>(args.i64("points"));
  const auto n = static_cast<std::uint64_t>(args.i64("n"));
  const auto curve = bench::parse_csv_i64(args.str("jobs-curve"));
  const std::string scratch = args.str("scratch");

  std::printf("== Scheduler benchmark (machine %s, %d points, n=%llu) ==\n\n",
              cfg.machine.name.c_str(), points,
              static_cast<unsigned long long>(n));

  // Cold serial baseline, then warm re-run from the same cache.
  std::filesystem::remove_all(scratch);
  const std::string serial_dir = scratch + "/serial";
  const auto cold = run_grid(cfg, points, 1, n, serial_dir);
  const auto warm = run_grid(cfg, points, 1, n, serial_dir);

  // Scaling claims only mean something against the hardware they ran on:
  // by default every curve entry is clamped to the host thread budget, so
  // the curve measures parallel speedup, never scheduling overhead under
  // oversubscription. --allow-oversubscribe restores the raw behavior.
  const bool allow_oversubscribe = args.boolean("allow-oversubscribe");
  const int budget = rt::host_thread_budget();
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  // Cold scaling curve, one fresh cache per requested job count.
  struct CurvePoint {
    int requested{1};
    int jobs{1};
    bool clamped{false};
    GridTiming timing;
  };
  std::vector<CurvePoint> curve_results;
  for (const long long jobs : curve) {
    const std::string dir = scratch + "/jobs" + std::to_string(jobs);
    CurvePoint cp;
    cp.requested = static_cast<int>(jobs);
    cp.jobs = allow_oversubscribe ? cp.requested
                                  : std::min(cp.requested, budget);
    cp.clamped = cp.jobs != cp.requested;
    cp.timing = run_grid(cfg, points, cp.jobs, n, dir);
    curve_results.push_back(cp);
  }
  std::filesystem::remove_all(scratch);

  support::TextTable table({"run", "jobs", "seconds", "points/sec",
                            "speedup vs cold-1"});
  table.set_precision(2, 4);
  table.set_precision(3, 1);
  table.set_precision(4, 2);
  table.add_row({std::string("cold"), 1LL, cold.seconds,
                 points / cold.seconds, 1.0});
  table.add_row({std::string("warm"), 1LL, warm.seconds,
                 points / warm.seconds, cold.seconds / warm.seconds});
  bool any_clamped = false;
  bool any_oversubscribed = false;
  for (const auto& cp : curve_results) {
    const bool over = cp.jobs > host_cores;
    any_clamped = any_clamped || cp.clamped;
    any_oversubscribed = any_oversubscribed || over;
    table.add_row({cp.clamped ? "cold^" : (over ? "cold*" : "cold"),
                   static_cast<long long>(cp.jobs), cp.timing.seconds,
                   points / cp.timing.seconds,
                   cold.seconds / cp.timing.seconds});
  }
  bench::emit(table, cfg);
  if (any_clamped) {
    std::printf(
        "^ requested jobs clamped to the host thread budget (%d); pass "
        "--allow-oversubscribe to run them anyway.\n\n",
        budget);
  }
  if (any_oversubscribed) {
    std::printf(
        "* jobs exceeds the %d host core%s: those rows measure scheduling "
        "overhead under oversubscription, not parallel speedup.\n\n",
        host_cores, host_cores == 1 ? "" : "s");
  }

  if (warm.computed != 0) {
    std::fprintf(stderr, "warm run recomputed %zu points!\n", warm.computed);
    return 1;
  }

  const std::string out_path = args.str("out");
  support::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("harness");
  json.key("machine");
  json.value(cfg.machine.name);
  json.key("points");
  json.value(static_cast<std::int64_t>(points));
  json.key("n");
  json.value(static_cast<std::uint64_t>(n));
  json.key("host_threads");
  json.value(static_cast<std::int64_t>(rt::host_thread_budget()));
  json.key("host_cores");
  json.value(static_cast<std::int64_t>(host_cores));
  json.key("cold_serial_seconds");
  json.value(cold.seconds);
  json.key("warm_seconds");
  json.value(warm.seconds);
  json.key("warm_over_cold");
  json.value(warm.seconds / cold.seconds);
  json.key("points_per_second_cold");
  json.value(points / cold.seconds);
  json.key("points_per_second_warm");
  json.value(points / warm.seconds);
  json.key("jobs_curve");
  json.begin_array();
  for (const auto& cp : curve_results) {
    json.begin_object();
    json.key("requested_jobs");
    json.value(static_cast<std::int64_t>(cp.requested));
    json.key("jobs");
    json.value(static_cast<std::int64_t>(cp.jobs));
    json.key("clamped");
    json.value(cp.clamped);
    json.key("seconds");
    json.value(cp.timing.seconds);
    json.key("speedup_vs_serial");
    json.value(cold.seconds / cp.timing.seconds);
    json.key("oversubscribed");
    json.value(cp.jobs > host_cores);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", json.str().c_str());
  std::fclose(f);
  std::printf("(json written to %s)\n", out_path.c_str());
  std::printf(
      "expected shape: warm_over_cold well under 0.1 (the cache replaces "
      "simulation with a JSONL read); speedup_vs_serial tracking the job "
      "count up to the host's core count (flat on a single-core host).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
