// Figure 1: measured vs predicted communication time for prefix sums.
//
// Paper finding: both QSM and BSP *underestimate* prefix-sum communication
// (messages are tiny, so the per-message overhead and latency they ignore
// dominate), QSM sits below BSP (it also ignores L), measured communication
// is flat in n, and the absolute error is small because communication
// itself is tiny relative to total time.
#include <cstdio>
#include <string>
#include <vector>

#include "algos/prefix.hpp"
#include "support/ascii_chart.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "models/calibration.hpp"
#include "models/predictors.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_fig1_prefix",
                          "Figure 1: prefix sums, measured vs QSM/BSP "
                          "predicted communication time");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size");
  args.flag_i64("nmax", 1 << 20, "largest problem size");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Figure 1: prefix sums", cfg, cal);
  const auto pred = models::prefix_comm(cal);

  // Stage 1: submit the (n, rep) grid.
  harness::SweepRunner runner(bench::runner_options(cfg, "fig1_prefix"));
  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")));
  for (const std::uint64_t n : sizes) {
    for (int rep = 0; rep < cfg.reps; ++rep) {
      harness::KeyBuilder key("prefix");
      key.add("machine", cfg.machine);
      key.add("n", n);
      key.add("seed", cfg.seed);
      key.add("rep", rep);
      runner.submit(key.build(), [&cfg, n, rep] {
        rt::Runtime runtime(
            cfg.machine,
            rt::Options{.seed = cfg.seed + static_cast<std::uint64_t>(rep)});
        auto data = runtime.alloc<std::int64_t>(n);
        runtime.host_fill(
            data, bench::scratch_keys(
                      n, cfg.seed + n + static_cast<std::uint64_t>(rep)));
        harness::PointResult out;
        out.timing = algos::parallel_prefix(runtime, data).timing;
        return out;
      });
    }
  }
  const auto results = runner.run_all();

  // Stage 2: fold results back into the figure, in grid order.
  support::TextTable table({"n", "comm(meas)", "comm(QSM)", "comm(BSP)",
                            "total(meas)", "comm/total"});
  table.set_precision(1, 0);
  table.set_precision(2, 0);
  table.set_precision(3, 0);
  table.set_precision(4, 0);
  table.set_precision(5, 3);

  std::vector<double> xs, meas, totals;
  std::size_t at = 0;
  for (const std::uint64_t n : sizes) {
    const auto s = bench::summarize_points(
        results, at, static_cast<std::size_t>(cfg.reps));
    at += static_cast<std::size_t>(cfg.reps);
    table.add_row({static_cast<long long>(n), s.comm.mean, pred.qsm, pred.bsp,
                   s.total.mean, s.comm.mean / s.total.mean});
    xs.push_back(static_cast<double>(n));
    meas.push_back(s.comm.mean);
    totals.push_back(s.total.mean);
  }
  bench::emit(table, cfg);

  support::AsciiChart chart({.width = 68,
                             .height = 16,
                             .log_x = true,
                             .log_y = true,
                             .x_label = "n",
                             .y_label = "cycles"});
  chart.add_series("total", xs, totals);
  chart.add_series("comm(meas)", xs, meas);
  chart.add_series("comm(BSP)", xs, std::vector<double>(xs.size(), pred.bsp));
  chart.add_series("comm(QSM)", xs, std::vector<double>(xs.size(), pred.qsm));
  std::printf("%s\n", chart.render().c_str());
  std::printf(
      "expected shape: comm(QSM) < comm(BSP) < comm(meas); comm(meas) flat "
      "in n; comm/total shrinking as n grows.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
