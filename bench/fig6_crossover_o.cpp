// Figure 6: problem size needed for measured communication to fall inside
// the [Best-case, WHP] band, as per-message overhead o varies.
//
// Paper finding: like latency, the crossover problem size n* grows
// linearly in o — which is why QSM can leave o out of the model and rely
// on the compiler/runtime batching messages.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "crossover.hpp"
#include "models/calibration.hpp"
#include "support/stats.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_fig6_crossover_o",
                          "Figure 6: crossover problem size vs per-message "
                          "overhead");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size scanned");
  args.flag_i64("nmax", 1 << 18, "largest problem size scanned");
  args.flag_str("ovh-multipliers", "1,2,4,8",
                "comma-separated multipliers applied to per-message overhead");
  if (!args.parse(argc, argv)) return 0;
  auto cfg = bench::read_common_flags(args);

  const auto multipliers = bench::parse_csv_i64(args.str("ovh-multipliers"));

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Figure 6: crossover vs overhead", cfg, cal);

  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")),
                        std::sqrt(2.0));

  // Shares the "crossover" cache namespace with fig5 / table4 / sweep_p;
  // the m=1 variant in particular is the same grid and comes back warm.
  harness::SweepRunner runner(
      bench::runner_options(cfg, bench::kCrossoverWorkload));
  std::vector<bench::CrossoverJob> jobs;
  std::vector<long long> overheads;
  for (const long long m : multipliers) {
    auto variant = cfg.machine;
    variant.net.overhead *= m;
    overheads.push_back(static_cast<long long>(variant.net.overhead));
    jobs.push_back(bench::submit_samplesort_crossover(runner, variant, sizes,
                                                      cfg.reps, cfg.seed));
  }
  const auto results = runner.run_all();

  support::TextTable table({"overhead o (cy)", "crossover n*", "n*/p"});
  table.set_precision(1, 0);
  table.set_precision(2, 0);
  std::vector<double> os;
  std::vector<double> ns;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto res = bench::fold_samplesort_crossover(jobs[j], cal, results);
    table.add_row({overheads[j], res.n_star, res.n_star / cfg.machine.p});
    if (res.n_star > 0) {
      os.push_back(static_cast<double>(overheads[j]));
      ns.push_back(res.n_star);
    }
  }
  bench::emit(table, cfg);

  if (os.size() >= 2) {
    const auto fit = support::fit_line(os, ns);
    std::printf(
        "linear fit: n* = %.3f * o + %.0f   (R^2 = %.3f)\n"
        "expected shape: strongly linear (R^2 near 1), positive slope — the "
        "paper's Figure 6.\n",
        fit.slope, fit.intercept, fit.r2);
  } else {
    std::printf("not enough crossovers found to fit a line; widen --nmax.\n");
  }
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
