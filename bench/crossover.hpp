// Crossover finder for Figures 5 and 6.
//
// For a machine variant (latency or overhead scaled up), find the problem
// size n* at which measured sample-sort communication time first falls
// inside the [Best-case, WHP-bound] band predicted from the *reference*
// machine's calibration — the predictions deliberately do not change with
// l or o, exactly as in the paper ("QSM's predictions do not account for
// latency and are thus constant as l is varied").
#pragma once

#include <cstdint>
#include <vector>

#include "machine/config.hpp"
#include "models/calibration.hpp"

namespace qsm::bench {

struct CrossoverPoint {
  std::uint64_t n{0};
  double measured{0};
  double best{0};
  double whp{0};
};

struct CrossoverResult {
  /// Interpolated problem size where measured enters the band (crosses
  /// below the WHP bound); negative if it never does within the sweep.
  double n_star{-1};
  std::vector<CrossoverPoint> points;
};

/// Runs sample sort over `sizes` on `variant` and locates the crossover
/// against predictions from `reference_cal`.
[[nodiscard]] CrossoverResult find_samplesort_crossover(
    const machine::MachineConfig& variant,
    const models::Calibration& reference_cal,
    const std::vector<std::uint64_t>& sizes, int reps, std::uint64_t seed,
    int oversample_c = 4);

}  // namespace qsm::bench
