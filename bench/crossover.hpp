// Crossover finder for Figures 5 and 6 (and Table 4 / the p-sweep).
//
// For a machine variant (latency or overhead scaled up), find the problem
// size n* at which measured sample-sort communication time first falls
// inside the [Best-case, WHP-bound] band predicted from the *reference*
// machine's calibration — the predictions deliberately do not change with
// l or o, exactly as in the paper ("QSM's predictions do not account for
// latency and are thus constant as l is varied").
//
// The finder is split into two stages around the experiment scheduler:
// submit_samplesort_crossover() enqueues one grid point per (size, rep)
// on a SweepRunner, and fold_samplesort_crossover() turns that job's
// slice of the results back into the crossover curve. All four harnesses
// that sweep this grid (fig5, fig6, table4, sweep_p) share the
// "crossover" cache namespace, so each other's cached sort runs are
// reused across binaries.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/point.hpp"
#include "harness/sweep.hpp"
#include "machine/config.hpp"
#include "models/calibration.hpp"

namespace qsm::bench {

/// Cache namespace shared by every harness that sweeps this grid.
inline constexpr const char* kCrossoverWorkload = "crossover";

struct CrossoverPoint {
  std::uint64_t n{0};
  double measured{0};
  double best{0};
  double whp{0};
};

struct CrossoverResult {
  /// Interpolated problem size where measured enters the band (crosses
  /// below the WHP bound); negative if it never does within the sweep.
  double n_star{-1};
  std::vector<CrossoverPoint> points;
};

/// Handle connecting a submitted crossover sweep to its results.
struct CrossoverJob {
  std::size_t first{0};  ///< index of the job's first point in run_all order
  std::vector<std::uint64_t> sizes;
  int reps{1};
  int p{0};
  int oversample_c{4};
};

/// Enqueues sample sort over `sizes` x `reps` on `variant`; one grid point
/// per (size, rep), keyed by machine/size/seed/rep/oversampling.
[[nodiscard]] CrossoverJob submit_samplesort_crossover(
    harness::SweepRunner& runner, const machine::MachineConfig& variant,
    const std::vector<std::uint64_t>& sizes, int reps, std::uint64_t seed,
    int oversample_c = 4);

/// Locates the crossover of the job's measured communication times against
/// predictions from `reference_cal`. `results` is the vector returned by
/// the run_all() call that resolved this job.
[[nodiscard]] CrossoverResult fold_samplesort_crossover(
    const CrossoverJob& job, const models::Calibration& reference_cal,
    const std::vector<harness::PointResult>& results);

}  // namespace qsm::bench
