// Ablation: network congestion (the paper's parameter c).
//
// The Armadillo simulator "does not include network contention"; QSM's
// contract says bulk synchrony plus send-rate discipline keeps congestion
// secondary. We turn congestion ON (a finite-bisection fabric) and measure
// how sample-sort communication degrades as the fabric narrows, and how
// much the staggered schedule helps once the fabric can actually congest.
#include <cstdio>
#include <vector>

#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "net/exchange.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_congestion",
                          "ablation: finite-fabric congestion");
  bench::register_common_flags(args);
  args.flag_i64("n", 1 << 16, "sample-sort problem size");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto n = static_cast<std::uint64_t>(args.i64("n"));

  std::printf(
      "== Ablation: congestion (machine %s, p=%d, sample sort n=%llu) ==\n\n",
      cfg.machine.name.c_str(), cfg.machine.p,
      static_cast<unsigned long long>(n));

  // Grid: sample sorts over (fabric width x rep), then the schedule
  // comparison exchanges per fabric width. The fabric width is part of the
  // machine description, so it lands in each point's key automatically.
  const std::vector<int> sort_links{0, 16, 8, 4, 2, 1};
  const std::vector<int> sched_links{0, 4, 1};
  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_congestion"));
  for (const int links : sort_links) {
    auto variant = cfg.machine;
    variant.net.fabric_links = links;
    for (int rep = 0; rep < cfg.reps; ++rep) {
      harness::KeyBuilder key("samplesort");
      key.add("machine", variant);
      key.add("n", n);
      key.add("seed", cfg.seed);
      key.add("rep", rep);
      runner.submit(key.build(), [&cfg, variant, n, rep] {
        rt::Runtime runtime(
            variant,
            rt::Options{.seed = cfg.seed + static_cast<std::uint64_t>(rep)});
        auto data = runtime.alloc<std::int64_t>(n);
        runtime.host_fill(
            data, bench::scratch_keys(
                      n, cfg.seed + n + static_cast<std::uint64_t>(rep)));
        harness::PointResult out;
        out.timing = algos::sample_sort(runtime, data).timing;
        return out;
      });
    }
  }
  for (const int links : sched_links) {
    auto variant = cfg.machine;
    variant.net.fabric_links = links;
    harness::KeyBuilder key("exchange_schedule");
    key.add("machine", variant);
    key.add("bytes", 8192);
    runner.submit(key.build(), [&cfg, variant] {
      net::ExchangeSpec spec;
      spec.p = variant.p;
      spec.start.assign(static_cast<std::size_t>(variant.p), 0);
      for (int i = 0; i < variant.p; ++i) {
        for (int j = 0; j < variant.p; ++j) {
          if (i != j) spec.transfers.push_back({i, j, 8192});
        }
      }
      spec.order = net::ExchangeSpec::SendOrder::Staggered;
      const auto s = net::simulate_exchange(variant.net, cfg.machine.sw, spec);
      spec.order = net::ExchangeSpec::SendOrder::FixedTarget;
      const auto f = net::simulate_exchange(variant.net, cfg.machine.sw, spec);
      harness::PointResult out;
      out.metrics["staggered"] = static_cast<double>(s.finish);
      out.metrics["naive"] = static_cast<double>(f.finish);
      return out;
    });
  }
  const auto results = runner.run_all();

  support::TextTable table({"fabric links", "sort comm (cy)", "vs infinite"});
  table.set_precision(2, 2);
  double infinite_comm = 0;
  std::size_t at = 0;
  for (const int links : sort_links) {
    double comm = 0;
    for (int rep = 0; rep < cfg.reps; ++rep, ++at) {
      comm += static_cast<double>(results[at].timing.comm_cycles);
    }
    comm /= cfg.reps;
    if (links == 0) infinite_comm = comm;
    table.add_row({links == 0 ? std::string("infinite")
                              : std::to_string(links),
                   comm, comm / infinite_comm});
  }
  bench::emit(table, cfg);

  // Under a tight fabric, how much does the send schedule matter?
  support::TextTable sched({"fabric links", "staggered (cy)", "naive (cy)",
                            "naive/staggered"});
  sched.set_precision(3, 2);
  for (const int links : sched_links) {
    const double s = results[at].metric("staggered");
    const double f = results[at].metric("naive");
    ++at;
    sched.add_row({links == 0 ? std::string("infinite")
                              : std::to_string(links),
                   static_cast<long long>(s), static_cast<long long>(f),
                   f / s});
  }
  bench::emit(sched, cfg);
  std::printf(
      "expected shape: communication degrades smoothly as the fabric "
      "narrows (bulk synchrony tolerates congestion); the send schedule "
      "matters most at moderate congestion — once a single link serializes "
      "everything, order is irrelevant.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
