// Ablation: network congestion (the paper's parameter c).
//
// The Armadillo simulator "does not include network contention"; QSM's
// contract says bulk synchrony plus send-rate discipline keeps congestion
// secondary. We turn congestion ON (a finite-bisection fabric) and measure
// how sample-sort communication degrades as the fabric narrows, and how
// much the staggered schedule helps once the fabric can actually congest.
#include <cstdio>
#include <vector>

#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "net/exchange.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_congestion",
                          "ablation: finite-fabric congestion");
  bench::register_common_flags(args);
  args.flag_i64("n", 1 << 16, "sample-sort problem size");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto n = static_cast<std::uint64_t>(args.i64("n"));

  std::printf(
      "== Ablation: congestion (machine %s, p=%d, sample sort n=%llu) ==\n\n",
      cfg.machine.name.c_str(), cfg.machine.p,
      static_cast<unsigned long long>(n));

  support::TextTable table({"fabric links", "sort comm (cy)", "vs infinite"});
  table.set_precision(2, 2);
  double infinite_comm = 0;
  for (const int links : {0, 16, 8, 4, 2, 1}) {
    auto variant = cfg.machine;
    variant.net.fabric_links = links;
    double comm = 0;
    for (int rep = 0; rep < cfg.reps; ++rep) {
      rt::Runtime runtime(variant,
                          rt::Options{.seed = cfg.seed + static_cast<std::uint64_t>(rep)});
      auto data = runtime.alloc<std::int64_t>(n);
      runtime.host_fill(data, bench::random_keys(n, cfg.seed + n + static_cast<std::uint64_t>(rep)));
      comm += static_cast<double>(
          algos::sample_sort(runtime, data).timing.comm_cycles);
    }
    comm /= cfg.reps;
    if (links == 0) infinite_comm = comm;
    table.add_row({links == 0 ? std::string("infinite")
                              : std::to_string(links),
                   comm, comm / infinite_comm});
  }
  bench::emit(table, cfg);

  // Under a tight fabric, how much does the send schedule matter?
  net::ExchangeSpec spec;
  spec.p = cfg.machine.p;
  spec.start.assign(static_cast<std::size_t>(cfg.machine.p), 0);
  for (int i = 0; i < cfg.machine.p; ++i) {
    for (int j = 0; j < cfg.machine.p; ++j) {
      if (i != j) spec.transfers.push_back({i, j, 8192});
    }
  }
  support::TextTable sched({"fabric links", "staggered (cy)", "naive (cy)",
                            "naive/staggered"});
  sched.set_precision(3, 2);
  for (const int links : {0, 4, 1}) {
    auto net_cfg = cfg.machine.net;
    net_cfg.fabric_links = links;
    spec.order = net::ExchangeSpec::SendOrder::Staggered;
    const auto s = net::simulate_exchange(net_cfg, cfg.machine.sw, spec);
    spec.order = net::ExchangeSpec::SendOrder::FixedTarget;
    const auto f = net::simulate_exchange(net_cfg, cfg.machine.sw, spec);
    sched.add_row({links == 0 ? std::string("infinite")
                              : std::to_string(links),
                   static_cast<long long>(s.finish),
                   static_cast<long long>(f.finish),
                   static_cast<double>(f.finish) /
                       static_cast<double>(s.finish)});
  }
  bench::emit(sched, cfg);
  std::printf(
      "expected shape: communication degrades smoothly as the fabric "
      "narrows (bulk synchrony tolerates congestion); the send schedule "
      "matters most at moderate congestion — once a single link serializes "
      "everything, order is irrelevant.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
