// Ablation: QSM-style elimination list ranking vs PRAM-style pointer
// jumping (Wyllie) on the same simulated machine.
//
// Section 2.1's argument made concrete: the PRAM algorithm needs
// Theta(n log n / p) remote words and 2 ceil(log2 n) phases, the QSM
// algorithm Theta(n/p) words in O(log p) elimination rounds — so the gap
// widens with n.
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "algos/listrank.hpp"
#include "algos/wyllie.hpp"
#include "common.hpp"
#include "core/runtime.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_wyllie",
                          "ablation: elimination vs pointer-jumping list "
                          "ranking");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest list");
  args.flag_i64("nmax", 1 << 16, "largest list");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);

  std::printf(
      "== Ablation: elimination (QSM) vs pointer jumping (PRAM baseline), "
      "machine %s, p=%d ==\n\n",
      cfg.machine.name.c_str(), cfg.machine.p);

  // Both algorithms run (and are cross-checked) inside ONE grid point, so
  // a cached point still certifies that the two agreed when computed.
  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_wyllie"));
  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")), 4.0);
  for (const std::uint64_t n : sizes) {
    harness::KeyBuilder key("elim_vs_wyllie");
    key.add("machine", cfg.machine);
    key.add("n", n);
    key.add("seed", cfg.seed);
    runner.submit(key.build(), [&cfg, n] {
      const auto list = algos::make_random_list(n, cfg.seed + n);

      rt::Runtime rt_elim(cfg.machine, rt::Options{.seed = cfg.seed});
      auto ranks_elim = rt_elim.alloc<std::int64_t>(n);
      const auto elim = algos::list_rank(rt_elim, list, ranks_elim);

      rt::Runtime rt_wyllie(cfg.machine, rt::Options{.seed = cfg.seed});
      auto ranks_wyllie = rt_wyllie.alloc<std::int64_t>(n);
      const auto wyllie =
          algos::wyllie_list_rank(rt_wyllie, list, ranks_wyllie);

      // Both must agree (and be right) before the timing comparison means
      // anything.
      if (rt_elim.host_read(ranks_elim) != rt_wyllie.host_read(ranks_wyllie)) {
        throw std::runtime_error("rank mismatch at n=" + std::to_string(n));
      }

      harness::PointResult out;
      out.timing = elim.timing;
      out.metrics["wyllie_comm"] =
          static_cast<double>(wyllie.timing.comm_cycles);
      out.metrics["wyllie_words"] = static_cast<double>(wyllie.timing.rw_total);
      out.metrics["wyllie_phases"] = static_cast<double>(wyllie.timing.phases);
      return out;
    });
  }

  std::vector<harness::PointResult> results;
  try {
    results = runner.run_all();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  support::TextTable table({"n", "elim comm", "wyllie comm", "speedup",
                            "elim words", "wyllie words", "elim phases",
                            "wyllie phases"});
  table.set_precision(3, 2);
  std::size_t at = 0;
  for (const std::uint64_t n : sizes) {
    const auto& r = results[at++];
    const double wyllie_comm = r.metric("wyllie_comm");
    table.add_row({static_cast<long long>(n),
                   static_cast<long long>(r.timing.comm_cycles),
                   static_cast<long long>(wyllie_comm),
                   wyllie_comm / static_cast<double>(r.timing.comm_cycles),
                   static_cast<long long>(r.timing.rw_total),
                   static_cast<long long>(r.metric("wyllie_words")),
                   static_cast<long long>(r.timing.phases),
                   static_cast<long long>(r.metric("wyllie_phases"))});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: speedup grows with n (the log n communication "
      "factor) and exceeds 1 once lists are big enough to amortize the "
      "elimination algorithm's fixed ~84-phase schedule; at tiny n pointer "
      "jumping's fewer phases can win. Elimination's phase count is "
      "independent of n; pointer jumping's grows as 2 ceil(log2 n).\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
