// Chaos benchmark: how far the QSM cost model drifts under injected faults.
//
// The fault layer prices drops, duplicates, delays, node slowdown, and
// phase replays on the exchange DES. The QSM estimate, by construction,
// prices only the fault-free h-relation (max put/get words per phase at
// the calibrated gap). So the predicted-vs-measured deviation is a direct
// readout of how much simulated time the injected faults cost: it must be
// ~0 at fault rate 0 (the calibration sanity check) and grow monotonically
// (in expectation) as the drop rate or the slowdown probability rises.
//
// Grid: {prefix, samplesort, listrank} x p in {16,64,256} x a drop-rate
// sweep (slow=0) and a slowdown sweep (drop=0). Sample sort sizes itself
// per p to the smallest power of two obeying p^2 log2 n <= n. Emits
// BENCH_chaos.json with one record per point.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "algos/listrank.hpp"
#include "algos/prefix.hpp"
#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "models/calibration.hpp"
#include "models/predictors.hpp"
#include "net/fault.hpp"
#include "support/json.hpp"

namespace {

using namespace qsm;

std::vector<double> parse_csv_f64(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

/// Smallest power-of-two n with p^2 log2(n) <= n (the sample sort
/// applicability bound).
std::uint64_t samplesort_n(int p) {
  const auto pp = static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p);
  std::uint64_t n = 1 << 12;
  int log2n = 12;
  while (pp * static_cast<std::uint64_t>(log2n) > n) {
    n <<= 1;
    ++log2n;
  }
  return n;
}

struct Setting {
  double drop;
  double slow;
};

struct Cell {
  std::string algo;
  int p;
  std::uint64_t n;
  Setting s;
  harness::PointResult r;
  double estimate;   // qsm_estimate_from_trace, fault-free calibration
  double deviation;  // (comm - estimate) / estimate
  double overhead;   // (comm - clean comm) / clean comm, same algo and p
};

int run(int argc, const char* const* argv) {
  support::ArgParser args(
      "bench_chaos",
      "predicted-vs-measured deviation of prefix/samplesort/listrank as "
      "fault rates sweep up from zero");
  bench::register_common_flags(args);
  args.flag_str("procs", "16,64,256", "comma-separated processor counts");
  args.flag_str("drops", "0,0.02,0.05,0.1",
                "drop-rate sweep (slowdown held at 0)");
  args.flag_str("slows", "0.25,0.5",
                "slowdown-probability sweep (drop held at 0)");
  args.flag_i64("n-prefix", 1 << 17,
                "prefix problem size (parallel prefix wants p^2 <= n)");
  args.flag_i64("n-list", 1 << 13, "list ranking problem size");
  args.flag_str("out", "BENCH_chaos.json", "machine-readable output file");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto procs = bench::parse_csv_i64(args.str("procs"));
  const auto n_prefix = static_cast<std::uint64_t>(args.i64("n-prefix"));
  const auto n_list = static_cast<std::uint64_t>(args.i64("n-list"));

  // The drop sweep carries the zero point; the slow sweep adds only its
  // nonzero rates (drop=0,slow=0 would duplicate the baseline key).
  std::vector<Setting> settings;
  for (const double d : parse_csv_f64(args.str("drops"))) {
    settings.push_back({d, 0.0});
  }
  for (const double s : parse_csv_f64(args.str("slows"))) {
    if (s > 0) settings.push_back({0.0, s});
  }

  // Predictions are priced against the *fault-free* machine: the model
  // does not know about faults, which is exactly what makes the deviation
  // a measurement of their cost. One calibration per p.
  std::map<int, models::Calibration> cals;
  for (const long long pll : procs) {
    auto clean = cfg.machine;
    clean.p = static_cast<int>(pll);
    clean.net.fault = net::FaultParams{};
    cals.emplace(clean.p, models::calibrate(clean));
  }
  bench::print_preamble("Chaos: model deviation under faults", cfg,
                        cals.begin()->second);

  harness::SweepRunner runner(bench::runner_options(cfg, "chaos"));
  std::vector<Cell> cells;
  for (const long long pll : procs) {
    const int p = static_cast<int>(pll);
    const struct {
      const char* name;
      std::uint64_t n;
    } workloads[] = {{"prefix", n_prefix},
                     {"samplesort", samplesort_n(p)},
                     {"listrank", n_list}};
    for (const auto& w : workloads) {
      for (const Setting& s : settings) {
        auto m = cfg.machine;
        m.p = p;
        m.net.fault.drop_prob = s.drop;
        m.net.fault.slow_prob = s.slow;
        m.net.fault.validate();
        harness::KeyBuilder key("chaos");
        key.add("machine", m);
        key.add("algo", std::string_view(w.name));
        key.add("n", w.n);
        key.add("seed", cfg.seed);
        const std::string algo = w.name;
        const std::uint64_t n = w.n;
        const std::uint64_t seed = cfg.seed;
        runner.submit(key.build(), [m, algo, n, seed] {
          rt::Runtime runtime(m, rt::Options{.seed = seed});
          harness::PointResult out;
          if (algo == "prefix") {
            auto data = runtime.alloc<std::int64_t>(n);
            runtime.host_fill(data, bench::scratch_keys(n, seed + n * 31));
            out.timing = algos::parallel_prefix(runtime, data).timing;
          } else if (algo == "samplesort") {
            auto data = runtime.alloc<std::int64_t>(n);
            runtime.host_fill(data, bench::scratch_keys(n, seed + n * 31));
            out.timing = algos::sample_sort(runtime, data).timing;
          } else {
            const auto list = algos::make_random_list(n, seed ^ 5);
            auto ranks = runtime.alloc<std::int64_t>(n);
            out.timing = algos::list_rank(runtime, list, ranks).timing;
          }
          return out;
        });
        cells.push_back({algo, p, n, s, {}, 0, 0, 0});
      }
    }
  }
  const auto results = runner.run_all();

  // The fault-free point of each (algo, p) anchors the overhead column:
  // everything above it is simulated time the faults added.
  std::map<std::pair<std::string, int>, double> clean_comm;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cell& c = cells[i];
    c.r = results[i];
    if (c.s.drop == 0 && c.s.slow == 0) {
      clean_comm[{c.algo, c.p}] =
          static_cast<double>(c.r.timing.comm_cycles);
    }
  }

  support::TextTable table({"algo", "p", "n", "drop", "slow", "comm",
                            "qsm-est", "dev%", "over%", "retries", "dups",
                            "replays"});
  table.set_precision(3, 2);
  table.set_precision(4, 2);
  table.set_precision(5, 0);
  table.set_precision(6, 0);
  table.set_precision(7, 1);
  table.set_precision(8, 1);
  for (Cell& c : cells) {
    const auto& cal = cals.at(c.p);
    c.estimate = models::qsm_estimate_from_trace(cal, c.r.timing);
    const auto comm = static_cast<double>(c.r.timing.comm_cycles);
    c.deviation = c.estimate > 0 ? (comm - c.estimate) / c.estimate : 0.0;
    const auto clean = clean_comm.find({c.algo, c.p});
    c.overhead = clean != clean_comm.end() && clean->second > 0
                     ? (comm - clean->second) / clean->second
                     : 0.0;
    table.add_row({c.algo, static_cast<long long>(c.p),
                   static_cast<long long>(c.n), c.s.drop, c.s.slow, comm,
                   c.estimate, 100.0 * c.deviation, 100.0 * c.overhead,
                   static_cast<long long>(c.r.timing.retries),
                   static_cast<long long>(c.r.timing.duplicates),
                   static_cast<long long>(c.r.timing.replays)});
  }
  bench::emit(table, cfg);

  support::JsonWriter json;
  json.begin_object();
  json.key("bench").value("chaos");
  json.key("machine").value(cfg.machine.name);
  json.key("seed").value(cfg.seed);
  json.key("grid").begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.key("algo").value(c.algo);
    json.key("p").value(static_cast<std::int64_t>(c.p));
    json.key("n").value(c.n);
    json.key("drop_prob").value(c.s.drop);
    json.key("slow_prob").value(c.s.slow);
    json.key("comm_cycles").value(c.r.timing.comm_cycles);
    json.key("total_cycles").value(c.r.timing.total_cycles);
    json.key("qsm_estimate").value(c.estimate);
    json.key("deviation").value(c.deviation);
    json.key("fault_overhead").value(c.overhead);
    json.key("retries").value(c.r.timing.retries);
    json.key("drops").value(c.r.timing.drops);
    json.key("duplicates").value(c.r.timing.duplicates);
    json.key("replays").value(c.r.timing.replays);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string out_path = args.str("out");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", json.str().c_str());
  std::fclose(f);
  std::printf("(json written to %s)\n", out_path.c_str());
  std::printf(
      "expected shape: over%% = 0 at drop=slow=0 by construction and rising "
      "with either rate; dev%% starts at each workload's fault-free floor "
      "(latency and barriers the QSM h-relation estimate ignores) and "
      "climbs in lockstep — the climb is the simulated cost of retries, "
      "stalls, and replays.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
