// Figure 5: problem size needed for measured communication to fall inside
// the [Best-case, WHP] band, as hardware latency l varies.
//
// Paper finding: the crossover problem size n* grows linearly in l.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "crossover.hpp"
#include "models/calibration.hpp"
#include "support/stats.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_fig5_crossover_l",
                          "Figure 5: crossover problem size vs latency");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size scanned");
  args.flag_i64("nmax", 1 << 18, "largest problem size scanned");
  args.flag_str("lat-multipliers", "1,4,8,16",
                "comma-separated multipliers applied to hardware latency");
  if (!args.parse(argc, argv)) return 0;
  auto cfg = bench::read_common_flags(args);

  const auto multipliers = bench::parse_csv_i64(args.str("lat-multipliers"));

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Figure 5: crossover vs latency", cfg, cal);

  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")),
                        std::sqrt(2.0));

  // All latency variants share one sweep: every (variant, n, rep) sort is
  // one grid point in the shared "crossover" cache namespace, so table4 /
  // sweep_p / fig6 runs reuse whatever overlaps.
  harness::SweepRunner runner(
      bench::runner_options(cfg, bench::kCrossoverWorkload));
  std::vector<bench::CrossoverJob> jobs;
  std::vector<long long> latencies;
  for (const long long m : multipliers) {
    auto variant = cfg.machine;
    variant.net.latency *= m;
    latencies.push_back(static_cast<long long>(variant.net.latency));
    jobs.push_back(bench::submit_samplesort_crossover(runner, variant, sizes,
                                                      cfg.reps, cfg.seed));
  }
  const auto results = runner.run_all();

  support::TextTable table({"latency l (cy)", "crossover n*", "n*/p"});
  table.set_precision(1, 0);
  table.set_precision(2, 0);
  std::vector<double> ls;
  std::vector<double> ns;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto res = bench::fold_samplesort_crossover(jobs[j], cal, results);
    table.add_row({latencies[j], res.n_star, res.n_star / cfg.machine.p});
    if (res.n_star > 0) {
      ls.push_back(static_cast<double>(latencies[j]));
      ns.push_back(res.n_star);
    }
  }
  bench::emit(table, cfg);

  if (ls.size() >= 2) {
    const auto fit = support::fit_line(ls, ns);
    std::printf(
        "linear fit: n* = %.3f * l + %.0f   (R^2 = %.3f)\n"
        "expected shape: strongly linear (R^2 near 1), positive slope — the "
        "paper's Figure 5.\n",
        fit.slope, fit.intercept, fit.r2);
  } else {
    std::printf("not enough crossovers found to fit a line; widen --nmax.\n");
  }
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
