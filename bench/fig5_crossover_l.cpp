// Figure 5: problem size needed for measured communication to fall inside
// the [Best-case, WHP] band, as hardware latency l varies.
//
// Paper finding: the crossover problem size n* grows linearly in l.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "crossover.hpp"
#include "models/calibration.hpp"
#include "support/stats.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_fig5_crossover_l",
                          "Figure 5: crossover problem size vs latency");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size scanned");
  args.flag_i64("nmax", 1 << 18, "largest problem size scanned");
  args.flag_str("lat-multipliers", "1,4,8,16",
                "comma-separated multipliers applied to hardware latency");
  if (!args.parse(argc, argv)) return 0;
  auto cfg = bench::read_common_flags(args);

  std::vector<long long> multipliers;
  {
    const std::string& spec = args.str("lat-multipliers");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const auto comma = spec.find(',', pos);
      multipliers.push_back(std::stoll(spec.substr(pos, comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Figure 5: crossover vs latency", cfg, cal);

  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")),
                        std::sqrt(2.0));

  support::TextTable table({"latency l (cy)", "crossover n*", "n*/p"});
  table.set_precision(1, 0);
  table.set_precision(2, 0);
  std::vector<double> ls;
  std::vector<double> ns;
  for (const long long m : multipliers) {
    auto variant = cfg.machine;
    variant.net.latency *= m;
    const auto res = bench::find_samplesort_crossover(variant, cal, sizes,
                                                      cfg.reps, cfg.seed);
    table.add_row({static_cast<long long>(variant.net.latency), res.n_star,
                   res.n_star / cfg.machine.p});
    if (res.n_star > 0) {
      ls.push_back(static_cast<double>(variant.net.latency));
      ns.push_back(res.n_star);
    }
  }
  bench::emit(table, cfg);

  if (ls.size() >= 2) {
    const auto fit = support::fit_line(ls, ns);
    std::printf(
        "linear fit: n* = %.3f * l + %.0f   (R^2 = %.3f)\n"
        "expected shape: strongly linear (R^2 near 1), positive slope — the "
        "paper's Figure 5.\n",
        fit.slope, fit.intercept, fit.r2);
  } else {
    std::printf("not enough crossovers found to fit a line; widen --nmax.\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
