#include "crossover.hpp"

#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "models/predictors.hpp"
#include "support/stats.hpp"

namespace qsm::bench {

CrossoverResult find_samplesort_crossover(
    const machine::MachineConfig& variant,
    const models::Calibration& reference_cal,
    const std::vector<std::uint64_t>& sizes, int reps, std::uint64_t seed,
    int oversample_c) {
  CrossoverResult result;
  const int p = variant.p;

  std::vector<double> xs;
  std::vector<double> ratio;  // measured / whp; crossover at 1.0
  for (const std::uint64_t n : sizes) {
    double comm = 0;
    for (int rep = 0; rep < reps; ++rep) {
      rt::Runtime runtime(variant,
                          rt::Options{.seed = seed + static_cast<std::uint64_t>(rep)});
      auto data = runtime.alloc<std::int64_t>(n);
      runtime.host_fill(data,
                        random_keys(n, seed + n * 131 + static_cast<std::uint64_t>(rep)));
      comm += static_cast<double>(
          algos::sample_sort(runtime, data, oversample_c).timing.comm_cycles);
    }
    comm /= reps;

    CrossoverPoint pt;
    pt.n = n;
    pt.measured = comm;
    pt.best = models::samplesort_comm(reference_cal, n, p,
                                      models::samplesort_best_skew(n, p),
                                      oversample_c)
                  .qsm;
    pt.whp = models::samplesort_comm(
                 reference_cal, n, p,
                 models::samplesort_whp_skew(n, p, 0.1, oversample_c),
                 oversample_c)
                 .qsm;
    result.points.push_back(pt);
    xs.push_back(static_cast<double>(n));
    ratio.push_back(pt.measured / pt.whp);
  }

  result.n_star = support::first_crossing_below(xs, ratio, 1.0);
  return result;
}

}  // namespace qsm::bench
