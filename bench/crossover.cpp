#include "crossover.hpp"

#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "models/predictors.hpp"
#include "support/stats.hpp"

namespace qsm::bench {

CrossoverJob submit_samplesort_crossover(
    harness::SweepRunner& runner, const machine::MachineConfig& variant,
    const std::vector<std::uint64_t>& sizes, int reps, std::uint64_t seed,
    int oversample_c) {
  CrossoverJob job;
  job.sizes = sizes;
  job.reps = reps;
  job.p = variant.p;
  job.oversample_c = oversample_c;
  bool first_point = true;
  for (const std::uint64_t n : sizes) {
    for (int rep = 0; rep < reps; ++rep) {
      harness::KeyBuilder key("samplesort");
      key.add("machine", variant);
      key.add("n", n);
      key.add("seed", seed);
      key.add("rep", rep);
      key.add("c", oversample_c);
      const std::size_t index = runner.submit(
          key.build(), [variant, n, seed, rep, oversample_c] {
            rt::Runtime runtime(
                variant,
                rt::Options{.seed = seed + static_cast<std::uint64_t>(rep)});
            auto data = runtime.alloc<std::int64_t>(n);
            runtime.host_fill(
                data, scratch_keys(
                          n, seed + n * 131 + static_cast<std::uint64_t>(rep)));
            harness::PointResult out;
            out.timing = algos::sample_sort(runtime, data, oversample_c).timing;
            return out;
          });
      if (first_point) {
        job.first = index;
        first_point = false;
      }
    }
  }
  return job;
}

CrossoverResult fold_samplesort_crossover(
    const CrossoverJob& job, const models::Calibration& reference_cal,
    const std::vector<harness::PointResult>& results) {
  CrossoverResult result;
  std::vector<double> xs;
  std::vector<double> ratio;  // measured / whp; crossover at 1.0
  std::size_t at = job.first;
  for (const std::uint64_t n : job.sizes) {
    double comm = 0;
    for (int rep = 0; rep < job.reps; ++rep, ++at) {
      comm += static_cast<double>(results.at(at).timing.comm_cycles);
    }
    comm /= job.reps;

    CrossoverPoint pt;
    pt.n = n;
    pt.measured = comm;
    pt.best = models::samplesort_comm(reference_cal, n, job.p,
                                      models::samplesort_best_skew(n, job.p),
                                      job.oversample_c)
                  .qsm;
    pt.whp =
        models::samplesort_comm(
            reference_cal, n, job.p,
            models::samplesort_whp_skew(n, job.p, 0.1, job.oversample_c),
            job.oversample_c)
            .qsm;
    result.points.push_back(pt);
    xs.push_back(static_cast<double>(n));
    ratio.push_back(pt.measured / pt.whp);
  }

  result.n_star = support::first_crossing_below(xs, ratio, 1.0);
  return result;
}

}  // namespace qsm::bench
