// Effective bandwidth vs message size for one point-to-point message —
// the classic network curve behind Table 3's hardware-vs-observed split.
//
// Small messages are overhead-dominated (o + software per-message costs);
// the curve approaches the copy+wire rate as the payload grows. The "n/2"
// size — where half the asymptotic bandwidth is reached — summarizes how
// badly a machine needs batching.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "net/params.hpp"
#include "support/ascii_chart.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_netcurve",
                          "effective bandwidth vs message size");
  bench::register_common_flags(args);
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto& clk = cfg.machine.cpu.clock;

  std::printf("== Message-size curve (machine %s) ==\n\n",
              cfg.machine.name.c_str());

  std::vector<std::int64_t> payloads;
  for (std::int64_t bytes = 8; bytes <= (1 << 22); bytes *= 4) {
    payloads.push_back(bytes);
  }

  harness::SweepRunner runner(bench::runner_options(cfg, "netcurve"));
  for (const std::int64_t bytes : payloads) {
    harness::KeyBuilder key("msgcost");
    key.add("machine", cfg.machine);
    key.add("bytes", bytes);
    runner.submit(key.build(), [&cfg, bytes] {
      const net::MsgCost cost{cfg.machine.net, cfg.machine.sw};
      harness::PointResult out;
      out.metrics["cycles"] = static_cast<double>(cost.isolated(bytes));
      return out;
    });
  }
  const auto results = runner.run_all();

  support::TextTable table({"payload B", "time (cy)", "eff cy/B",
                            "eff MB/s"});
  table.set_precision(2, 2);
  table.set_precision(3, 1);
  std::vector<double> xs;
  std::vector<double> cpb;
  double asymptotic = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const std::int64_t bytes = payloads[i];
    const double t = results[i].metric("cycles");
    const double eff = t / static_cast<double>(bytes);
    table.add_row({static_cast<long long>(bytes),
                   static_cast<long long>(t), eff,
                   clk.gap_to_bytes_per_second(eff) / 1e6});
    xs.push_back(static_cast<double>(bytes));
    cpb.push_back(eff);
    asymptotic = eff;
  }
  bench::emit(table, cfg);

  // n/2 point: smallest payload reaching twice the asymptotic per-byte
  // cost (i.e., half the asymptotic bandwidth).
  double half_size = -1;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (cpb[i] <= 2.0 * asymptotic) {
      half_size = xs[i];
      break;
    }
  }
  std::printf("asymptotic cost %.2f cy/B (%.0f MB/s); half-bandwidth "
              "payload ~%.0f bytes\n\n",
              asymptotic, clk.gap_to_bytes_per_second(asymptotic) / 1e6,
              half_size);

  support::AsciiChart chart({.width = 64,
                             .height = 14,
                             .log_x = true,
                             .log_y = true,
                             .x_label = "payload bytes",
                             .y_label = "cy/B"});
  chart.add_series("effective cy/B", xs, cpb);
  std::printf("%s\n", chart.render().c_str());
  std::printf(
      "expected shape: per-byte cost falls as the per-message overheads "
      "amortize, flattening at the copy+wire rate — why the QSM contract "
      "insists on batching.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
