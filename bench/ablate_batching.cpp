// Ablation: message batching.
//
// QSM omits the per-message overhead o from its cost model because the
// contract makes the runtime batch requests at sync(). This bench prices
// the same word volume sent (a) batched into one message per destination
// pair and (b) eagerly, one message per word — across a sweep of o — to
// show why the contract makes o a secondary factor.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "net/exchange.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_batching",
                          "ablation: batched vs eager (per-word) messaging");
  bench::register_common_flags(args);
  args.flag_i64("words", 512, "words exchanged per node pair");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto words = static_cast<std::int64_t>(args.i64("words"));
  const std::int64_t record = cfg.machine.sw.put_record_bytes;

  std::printf(
      "== Ablation: message batching (machine %s, p=%d, %lld words/pair) "
      "==\n\n",
      cfg.machine.name.c_str(), cfg.machine.p,
      static_cast<long long>(words));

  const std::vector<long long> mults{1, 4, 16, 64};
  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_batching"));
  for (const long long mult : mults) {
    harness::KeyBuilder key("exchange_batching");
    key.add("machine", cfg.machine);
    key.add("words", words);
    key.add("omult", mult);
    runner.submit(key.build(), [&cfg, words, record, mult] {
      auto net = cfg.machine.net;
      net.overhead *= mult;

      net::ExchangeSpec batched;
      batched.p = cfg.machine.p;
      batched.start.assign(static_cast<std::size_t>(cfg.machine.p), 0);
      net::ExchangeSpec eager = batched;
      for (int i = 0; i < cfg.machine.p; ++i) {
        for (int j = 0; j < cfg.machine.p; ++j) {
          if (i == j) continue;
          batched.transfers.push_back({i, j, words * record});
          for (std::int64_t w = 0; w < words; ++w) {
            eager.transfers.push_back({i, j, record});
          }
        }
      }
      const auto b = net::simulate_exchange(net, cfg.machine.sw, batched);
      const auto e = net::simulate_exchange(net, cfg.machine.sw, eager);
      harness::PointResult out;
      out.metrics["overhead"] = static_cast<double>(net.overhead);
      out.metrics["batched"] = static_cast<double>(b.finish);
      out.metrics["eager"] = static_cast<double>(e.finish);
      return out;
    });
  }
  const auto results = runner.run_all();

  support::TextTable table({"overhead o (cy)", "batched (cy)", "eager (cy)",
                            "eager/batched"});
  table.set_precision(3, 1);
  for (std::size_t i = 0; i < mults.size(); ++i) {
    const double b = results[i].metric("batched");
    const double e = results[i].metric("eager");
    table.add_row({static_cast<long long>(results[i].metric("overhead")),
                   static_cast<long long>(b), static_cast<long long>(e),
                   e / b});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: eager/batched grows roughly linearly with o while "
      "batched barely moves — batching is what lets QSM drop o from the "
      "model.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
