// Ablation: message batching.
//
// QSM omits the per-message overhead o from its cost model because the
// contract makes the runtime batch requests at sync(). This bench prices
// the same word volume sent (a) batched into one message per destination
// pair and (b) eagerly, one message per word — across a sweep of o — to
// show why the contract makes o a secondary factor.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "net/exchange.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_batching",
                          "ablation: batched vs eager (per-word) messaging");
  bench::register_common_flags(args);
  args.flag_i64("words", 512, "words exchanged per node pair");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto words = static_cast<std::int64_t>(args.i64("words"));
  const std::int64_t record = cfg.machine.sw.put_record_bytes;

  std::printf(
      "== Ablation: message batching (machine %s, p=%d, %lld words/pair) "
      "==\n\n",
      cfg.machine.name.c_str(), cfg.machine.p,
      static_cast<long long>(words));

  support::TextTable table({"overhead o (cy)", "batched (cy)", "eager (cy)",
                            "eager/batched"});
  table.set_precision(3, 1);

  for (const long long mult : {1LL, 4LL, 16LL, 64LL}) {
    auto net = cfg.machine.net;
    net.overhead *= mult;

    net::ExchangeSpec batched;
    batched.p = cfg.machine.p;
    batched.start.assign(static_cast<std::size_t>(cfg.machine.p), 0);
    net::ExchangeSpec eager = batched;
    for (int i = 0; i < cfg.machine.p; ++i) {
      for (int j = 0; j < cfg.machine.p; ++j) {
        if (i == j) continue;
        batched.transfers.push_back({i, j, words * record});
        for (std::int64_t w = 0; w < words; ++w) {
          eager.transfers.push_back({i, j, record});
        }
      }
    }
    const auto b = net::simulate_exchange(net, cfg.machine.sw, batched);
    const auto e = net::simulate_exchange(net, cfg.machine.sw, eager);
    table.add_row({static_cast<long long>(net.overhead),
                   static_cast<long long>(b.finish),
                   static_cast<long long>(e.finish),
                   static_cast<double>(e.finish) /
                       static_cast<double>(b.finish)});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: eager/batched grows roughly linearly with o while "
      "batched barely moves — batching is what lets QSM drop o from the "
      "model.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
