// Ablation: sample sort vs radix sort under the QSM cost model.
//
// Radix sort does no comparison sorting but scatters every key on every
// pass; sample sort moves each key ~twice but pays two local sorts. QSM's
// g*m_rw term says the machine's gap decides the winner: as g grows, the
// comm-heavy radix falls behind. We sweep the hardware gap and report
// both algorithms' simulated totals and the model's verdict.
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "algos/radixsort.hpp"
#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_radix",
                          "ablation: sample sort vs radix sort as the gap "
                          "varies");
  bench::register_common_flags(args);
  args.flag_i64("n", 1 << 16, "keys to sort");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto n = static_cast<std::uint64_t>(args.i64("n"));

  std::printf("== Ablation: sample sort vs radix sort (machine %s, p=%d, "
              "n=%llu) ==\n\n",
              cfg.machine.name.c_str(), cfg.machine.p,
              static_cast<unsigned long long>(n));

  // Both sorts run (and are cross-checked) inside ONE grid point per gap
  // setting, so a cached point still certifies agreement.
  const std::vector<double> gap_mults{0.25, 1.0, 4.0, 16.0};
  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_radix"));
  for (const double gap_mult : gap_mults) {
    auto variant = cfg.machine;
    variant.net.gap_cpb *= gap_mult;
    harness::KeyBuilder key("sample_vs_radix");
    key.add("machine", variant);
    key.add("n", n);
    key.add("seed", cfg.seed);
    runner.submit(key.build(), [&cfg, variant, n] {
      const auto& keys = bench::scratch_keys(n, cfg.seed);
      rt::Runtime rt_sample(variant, rt::Options{.seed = cfg.seed});
      auto a = rt_sample.alloc<std::int64_t>(n);
      rt_sample.host_fill(a, keys);
      const auto sample = algos::sample_sort(rt_sample, a);

      rt::Runtime rt_radix(variant, rt::Options{.seed = cfg.seed});
      auto b = rt_radix.alloc<std::int64_t>(n);
      rt_radix.host_fill(b, keys);
      const auto radix = algos::radix_sort(rt_radix, b);

      if (rt_sample.host_read(a) != rt_radix.host_read(b)) {
        throw std::runtime_error("the two sorts disagree!");
      }

      harness::PointResult out;
      out.timing = sample.timing;
      out.metrics["radix_total"] =
          static_cast<double>(radix.timing.total_cycles);
      out.metrics["radix_words"] = static_cast<double>(radix.timing.rw_total);
      return out;
    });
  }

  std::vector<harness::PointResult> results;
  try {
    results = runner.run_all();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  support::TextTable table({"gap (c/B)", "sample total", "radix total",
                            "radix/sample", "sample words", "radix words"});
  table.set_precision(0, 2);
  table.set_precision(3, 2);

  std::size_t at = 0;
  for (const double gap_mult : gap_mults) {
    const auto& r = results[at++];
    const double radix_total = r.metric("radix_total");
    table.add_row(
        {cfg.machine.net.gap_cpb * gap_mult,
         static_cast<long long>(r.timing.total_cycles),
         static_cast<long long>(radix_total),
         radix_total / static_cast<double>(r.timing.total_cycles),
         static_cast<long long>(r.timing.rw_total),
         static_cast<long long>(r.metric("radix_words"))});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: radix moves several times more remote words "
      "(passes * n vs ~2n), so radix/sample grows with the gap — the "
      "g*m_rw term of the QSM charge deciding an algorithm choice.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
