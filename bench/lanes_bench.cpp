// Lane-engine benchmark: what the cooperative fiber lanes buy.
//
// The tentpole claim is host throughput at p >> host cores: with thread
// lanes, every phase pays p futex sleep/wake pairs at the barrier; with
// fiber lanes a phase is p user-space context switches on a handful of
// carriers. This bench runs a barrier-dominated synthetic program (one
// word exchanged per node per phase — all overhead, no work) at
// p in {16, 64, 256} under both engines, reports phases/sec, and emits
// BENCH_lanes.json next to the other machine-readable bench outputs.
//
// Both engines must produce the same trace — that is checked here too, and
// the JSON says so, but the parity *test* suite is the real oracle.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/runtime.hpp"
#include "support/fiber.hpp"
#include "support/json.hpp"

namespace {

using namespace qsm;

struct ModeTiming {
  double best_seconds{0};
  std::uint64_t threads_created{0};
  int carriers{0};
  rt::RunResult trace;
};

/// Runs `phases` one-word ring-exchange phases at width p under `lanes`,
/// `reps` times on one long-lived runtime (pools warm after the first
/// run), and keeps the best wall-clock.
ModeTiming time_mode(const machine::MachineConfig& base, int p, int phases,
                     int reps, std::uint64_t seed, rt::LaneMode lanes) {
  auto variant = base;
  variant.p = p;
  rt::Runtime runtime(variant, rt::Options{.seed = seed, .lanes = lanes});
  auto a = runtime.alloc<std::int64_t>(static_cast<std::uint64_t>(p),
                                       rt::Layout::Block);
  const auto program = [&](rt::Context& ctx) {
    const auto rank = static_cast<std::uint64_t>(ctx.rank());
    const auto np = static_cast<std::uint64_t>(ctx.nprocs());
    for (int ph = 0; ph < phases; ++ph) {
      ctx.put(a, (rank + 1) % np, static_cast<std::int64_t>(rank + 1));
      ctx.sync();
    }
  };

  ModeTiming t;
  t.trace = runtime.run(program);  // warm-up: creates lanes/carriers
  t.best_seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = runtime.run(program);
    const auto t1 = std::chrono::steady_clock::now();
    QSM_REQUIRE(r.phases == t.trace.phases, "phase count drifted across reps");
    t.best_seconds =
        std::min(t.best_seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  t.threads_created = runtime.host_threads_created();
  t.carriers = runtime.host_carriers();
  return t;
}

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_lanes",
                          "thread vs fiber program lanes: phases/sec on a "
                          "barrier-dominated workload");
  bench::register_common_flags(args);
  args.flag_str("procs", "16,64,256", "comma-separated processor counts");
  args.flag_i64("phases", 100, "sync phases per run");
  args.flag_str("out", "BENCH_lanes.json", "machine-readable output file");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const int phases = static_cast<int>(args.i64("phases"));
  const auto procs = bench::parse_csv_i64(args.str("procs"));

  if (!support::fibers_supported()) {
    std::printf("no fiber substrate on this platform; nothing to compare.\n");
    return 0;
  }

  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::printf(
      "== Lane engines (machine %s, %d phases/run, %d reps, %d host "
      "core%s) ==\n\n",
      cfg.machine.name.c_str(), phases, cfg.reps, host_cores,
      host_cores == 1 ? "" : "s");

  struct Row {
    int p;
    ModeTiming threads;
    ModeTiming fibers;
    bool identical;
  };
  std::vector<Row> rows;
  for (const long long pll : procs) {
    Row row;
    row.p = static_cast<int>(pll);
    row.threads = time_mode(cfg.machine, row.p, phases, cfg.reps, cfg.seed,
                            rt::LaneMode::Threads);
    row.fibers = time_mode(cfg.machine, row.p, phases, cfg.reps, cfg.seed,
                           rt::LaneMode::Fibers);
    row.identical = row.threads.trace == row.fibers.trace;
    rows.push_back(row);
  }

  support::TextTable table({"p", "threads ph/s", "fibers ph/s",
                            "fiber speedup", "OS threads (thr)",
                            "OS threads (fib)", "carriers"});
  table.set_precision(1, 0);
  table.set_precision(2, 0);
  table.set_precision(3, 2);
  for (const Row& row : rows) {
    table.add_row({static_cast<long long>(row.p),
                   phases / row.threads.best_seconds,
                   phases / row.fibers.best_seconds,
                   row.threads.best_seconds / row.fibers.best_seconds,
                   static_cast<long long>(row.threads.threads_created),
                   static_cast<long long>(row.fibers.threads_created),
                   static_cast<long long>(row.fibers.carriers)});
  }
  bench::emit(table, cfg);

  bool all_identical = true;
  for (const Row& row : rows) all_identical = all_identical && row.identical;
  std::printf("traces identical across engines: %s\n",
              all_identical ? "yes" : "NO — determinism bug");

  support::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("lanes");
  json.key("machine");
  json.value(cfg.machine.name);
  json.key("phases_per_run");
  json.value(static_cast<std::int64_t>(phases));
  json.key("reps");
  json.value(static_cast<std::int64_t>(cfg.reps));
  json.key("host_cores");
  json.value(static_cast<std::int64_t>(host_cores));
  json.key("traces_identical");
  json.value(all_identical);
  json.key("grid");
  json.begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("p");
    json.value(static_cast<std::int64_t>(row.p));
    json.key("thread_seconds");
    json.value(row.threads.best_seconds);
    json.key("fiber_seconds");
    json.value(row.fibers.best_seconds);
    json.key("thread_phases_per_sec");
    json.value(phases / row.threads.best_seconds);
    json.key("fiber_phases_per_sec");
    json.value(phases / row.fibers.best_seconds);
    json.key("fiber_speedup");
    json.value(row.threads.best_seconds / row.fibers.best_seconds);
    json.key("thread_os_threads");
    json.value(static_cast<std::uint64_t>(row.threads.threads_created));
    json.key("fiber_os_threads");
    json.value(static_cast<std::uint64_t>(row.fibers.threads_created));
    json.key("carriers");
    json.value(static_cast<std::int64_t>(row.fibers.carriers));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string out_path = args.str("out");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", json.str().c_str());
  std::fclose(f);
  std::printf("(json written to %s)\n", out_path.c_str());
  std::printf(
      "expected shape: fiber speedup growing with p once p passes the host "
      "core count — thread lanes pay p futex round-trips per phase, fiber "
      "lanes p user-space switches on %d carrier(s).\n",
      rows.empty() ? 0 : rows.back().fibers.carriers);
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
