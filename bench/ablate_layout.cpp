// Ablation: data-layout randomization inside the runtime.
//
// QSM's implementation contract says the runtime should hash shared data
// across nodes unless the algorithm declares its own layout balanced. This
// bench constructs the pathological case — every node reads one node's
// region of a shared array — and compares Block (hot owner) with Hashed
// (randomized) layouts.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/runtime.hpp"

namespace {

using namespace qsm;

rt::RunResult hot_read(const machine::MachineConfig& m, rt::Layout layout,
                       std::uint64_t n, std::uint64_t seed) {
  rt::Runtime runtime(m, rt::Options{.seed = seed});
  auto data = runtime.alloc<std::int64_t>(n, layout, "hot");
  const std::uint64_t window = n / static_cast<std::uint64_t>(m.p);
  return runtime.run([&](rt::Context& ctx) {
    // Everyone reads the same index window. Under Block layout it all
    // lands on node 0; under Hashed layout it spreads across the machine.
    std::vector<std::int64_t> buf(window);
    ctx.get_range(data, 0, window, buf.data());
    ctx.sync();
  });
}

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_layout",
                          "ablation: block vs hashed layout under a hot "
                          "access window");
  bench::register_common_flags(args);
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);

  std::printf("== Ablation: layout randomization (machine %s, p=%d) ==\n\n",
              cfg.machine.name.c_str(), cfg.machine.p);

  const std::vector<std::uint64_t> sizes{1u << 14, 1u << 16, 1u << 18};
  const struct {
    rt::Layout layout;
    const char* name;
  } layouts[] = {{rt::Layout::Block, "block"}, {rt::Layout::Hashed, "hashed"}};

  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_layout"));
  for (const std::uint64_t n : sizes) {
    for (const auto& l : layouts) {
      harness::KeyBuilder key("hot_read");
      key.add("machine", cfg.machine);
      key.add("layout", l.name);
      key.add("n", n);
      key.add("seed", cfg.seed);
      const auto layout = l.layout;
      runner.submit(key.build(), [&cfg, layout, n] {
        harness::PointResult out;
        out.timing = hot_read(cfg.machine, layout, n, cfg.seed);
        return out;
      });
    }
  }
  const auto results = runner.run_all();

  support::TextTable table(
      {"n", "block comm (cy)", "hashed comm (cy)", "block/hashed"});
  table.set_precision(3, 2);
  std::size_t at = 0;
  for (const std::uint64_t n : sizes) {
    const auto block = results[at++].timing.comm_cycles;
    const auto hashed = results[at++].timing.comm_cycles;
    table.add_row({static_cast<long long>(n), static_cast<long long>(block),
                   static_cast<long long>(hashed),
                   static_cast<double>(block) / static_cast<double>(hashed)});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: block/hashed well above 1 — one node serving "
      "everyone serializes, the hashed layout spreads the serving load.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
