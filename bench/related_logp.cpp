// Related work: LogP vs QSM accounting on the same traffic (paper sections
// 2.1 and 5).
//
// Martin et al. found parallel programs most sensitive to per-message
// overhead; the paper counters that under a bulk-synchronous contract the
// runtime batches, so o stops mattering. Here we price one balanced
// exchange of W words three ways — LogP with one word per message, LogP
// with runtime batching, and QSM (g per word, message-blind) — and compare
// each against the event-driven simulation of the batched exchange.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "models/calibration.hpp"
#include "models/logp.hpp"
#include "net/exchange.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_related_logp",
                          "LogP vs QSM pricing of one balanced exchange");
  bench::register_common_flags(args);
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const int p = cfg.machine.p;

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Related work: LogP vs QSM accounting", cfg, cal);

  models::LogPParams logp;
  logp.latency = static_cast<double>(cfg.machine.net.latency);
  logp.overhead = static_cast<double>(cfg.machine.net.overhead);
  // One word-record on the wire takes record_bytes * g cycles: that is
  // LogP's per-message gap for this machine.
  logp.gap_msg = cfg.machine.net.gap_cpb *
                 static_cast<double>(cfg.machine.sw.put_record_bytes);
  logp.processors = p;
  std::printf("LogP view of this machine: L=%.0f o=%.0f g=%.0f cy/msg, "
              "capacity ceil(L/g)=%lld messages in flight\n\n",
              logp.latency, logp.overhead, logp.gap_msg,
              static_cast<long long>(models::logp_capacity(logp)));

  // The analytic models are closed forms; only the event-driven exchange
  // simulation is worth scheduling and caching.
  const std::vector<std::int64_t> word_counts{256, 1024, 4096, 16384, 65536};
  harness::SweepRunner runner(bench::runner_options(cfg, "related_logp"));
  for (const std::int64_t words : word_counts) {
    harness::KeyBuilder key("exchange_balanced");
    key.add("machine", cfg.machine);
    key.add("words", words);
    runner.submit(key.build(), [&cfg, p, words] {
      net::ExchangeSpec spec;
      spec.p = p;
      spec.start.assign(static_cast<std::size_t>(p), 0);
      const std::int64_t per_pair = words / (p - 1);
      for (int i = 0; i < p; ++i) {
        for (int j = 0; j < p; ++j) {
          if (i != j) {
            spec.transfers.push_back(
                {i, j, per_pair * cfg.machine.sw.put_record_bytes});
          }
        }
      }
      const auto sim =
          net::simulate_exchange(cfg.machine.net, cfg.machine.sw, spec);
      harness::PointResult out;
      out.metrics["finish"] = static_cast<double>(sim.finish);
      return out;
    });
  }
  const auto results = runner.run_all();

  support::TextTable table({"words/node", "LogP eager", "LogP batched",
                            "LogGP batched", "QSM (g*words)",
                            "simulated batched"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_precision(c, 0);

  std::size_t at = 0;
  for (const std::int64_t words : word_counts) {
    const double eager = models::logp_word_exchange_time(logp, words, 1);
    // The runtime batches into one message per destination pair.
    const double batched = models::logp_word_exchange_time(
        logp, words, std::max<std::int64_t>(1, words / (p - 1)));
    auto loggp = logp;
    // LogGP's G: the wire rate plus the library's copy costs per byte.
    loggp.gap_byte = cfg.machine.net.gap_cpb + 2.0 * cfg.machine.sw.copy_cpb;
    loggp.gap_msg = static_cast<double>(cfg.machine.net.overhead);
    const double loggp_batched = models::loggp_word_exchange_time(
        loggp, words, std::max<std::int64_t>(1, words / (p - 1)),
        cfg.machine.sw.put_record_bytes);
    const double qsm = cal.put_cpw * static_cast<double>(words);
    table.add_row({static_cast<long long>(words), eager, batched,
                   loggp_batched, qsm, results[at++].metric("finish")});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: LogP-eager dwarfs everything (per-message o and g "
      "on every word); plain LogP-batched goes flat (no message-length "
      "term — LogGP's raison d'etre); LogGP-batched, QSM, and the "
      "simulation agree within a small factor at scale — QSM's "
      "message-blind accounting is safe exactly because the runtime "
      "batches.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
