// Figure 2: measured vs predicted performance for sample sort.
//
// Reproduces both panels: (a) total running time vs communication time and
// (b) measured communication against the Best-case closed form, the
// Chernoff WHP bound, the QSM estimate priced from the actually-measured
// skew (gap only), and the BSP estimate (QSM + 5L).
#include <cstdio>
#include <vector>

#include "algos/samplesort.hpp"
#include "support/ascii_chart.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "models/calibration.hpp"
#include "models/predictors.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_fig2_samplesort",
                          "Figure 2: sample sort, measured vs Best-case / "
                          "WHP / QSM-estimate / BSP-estimate");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 14, "smallest problem size");
  args.flag_i64("nmax", 1 << 20, "largest problem size");
  args.flag_i64("oversample", 4, "oversampling factor c");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const int c = static_cast<int>(args.i64("oversample"));

  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Figure 2: sample sort", cfg, cal);

  harness::SweepRunner runner(bench::runner_options(cfg, "fig2_samplesort"));
  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")));
  for (const std::uint64_t n : sizes) {
    for (int rep = 0; rep < cfg.reps; ++rep) {
      harness::KeyBuilder key("samplesort");
      key.add("machine", cfg.machine);
      key.add("n", n);
      key.add("seed", cfg.seed);
      key.add("rep", rep);
      key.add("c", c);
      runner.submit(key.build(), [&cfg, n, rep, c] {
        rt::Runtime runtime(
            cfg.machine,
            rt::Options{.seed = cfg.seed + static_cast<std::uint64_t>(rep)});
        auto data = runtime.alloc<std::int64_t>(n);
        runtime.host_fill(
            data, bench::scratch_keys(
                      n, cfg.seed + n * 31 + static_cast<std::uint64_t>(rep)));
        const auto sorted = algos::sample_sort(runtime, data, c);
        harness::PointResult out;
        out.timing = sorted.timing;
        out.metrics["largest_bucket"] =
            static_cast<double>(sorted.largest_bucket);
        out.metrics["remote_fraction"] = sorted.remote_fraction;
        return out;
      });
    }
  }
  const auto results = runner.run_all();

  support::TextTable table({"n", "total", "comm", "cv%", "best", "whp",
                            "qsm-est", "bsp-est", "B", "r"});
  for (std::size_t col : {1u, 2u, 4u, 5u, 6u, 7u}) table.set_precision(col, 0);
  table.set_precision(3, 1);
  table.set_precision(9, 3);

  const int p = cfg.machine.p;
  std::vector<double> xs, meas, bests, whps, ests;
  std::size_t at = 0;
  for (const std::uint64_t n : sizes) {
    double qsm_est = 0;
    double bsp_est = 0;
    std::uint64_t largest_bucket = 0;
    double remote_fraction = 0;
    const std::size_t first = at;
    for (int rep = 0; rep < cfg.reps; ++rep, ++at) {
      const harness::PointResult& r = results[at];
      qsm_est += models::qsm_estimate_from_trace(cal, r.timing);
      bsp_est += models::bsp_estimate_from_trace(cal, r.timing);
      largest_bucket = std::max(
          largest_bucket,
          static_cast<std::uint64_t>(r.metric("largest_bucket")));
      remote_fraction = std::max(remote_fraction, r.metric("remote_fraction"));
    }
    qsm_est /= cfg.reps;
    bsp_est /= cfg.reps;
    const auto s = bench::summarize_points(
        results, first, static_cast<std::size_t>(cfg.reps));
    const auto best =
        models::samplesort_comm(cal, n, p, models::samplesort_best_skew(n, p), c);
    const auto whp = models::samplesort_comm(
        cal, n, p, models::samplesort_whp_skew(n, p, 0.1, c), c);
    const double cv =
        s.comm.mean > 0 ? 100.0 * s.comm.stddev / s.comm.mean : 0.0;
    table.add_row({static_cast<long long>(n), s.total.mean, s.comm.mean, cv,
                   best.qsm, whp.qsm, qsm_est, bsp_est,
                   static_cast<long long>(largest_bucket), remote_fraction});
    xs.push_back(static_cast<double>(n));
    meas.push_back(s.comm.mean);
    bests.push_back(best.qsm);
    whps.push_back(whp.qsm);
    ests.push_back(qsm_est);
  }
  bench::emit(table, cfg);

  support::AsciiChart chart({.width = 68,
                             .height = 18,
                             .log_x = true,
                             .log_y = true,
                             .x_label = "n",
                             .y_label = "comm cycles"});
  chart.add_series("measured", xs, meas);
  chart.add_series("best", xs, bests);
  chart.add_series("whp", xs, whps);
  chart.add_series("qsm-est", xs, ests);
  std::printf("%s\n", chart.render().c_str());
  std::printf(
      "expected shape: best <= comm <= whp for all but tiny n; qsm-est "
      "within ~10%% of comm once n is large; bsp-est = qsm-est + 5L closes "
      "the gap at small n; cv%% below ~11 (the paper's run-to-run "
      "variability for sample sort).\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
