// Table 4: extrapolated minimum problem size for accurate QSM prediction,
// per architecture.
//
// Methodology mirrors the paper: the crossover is measured on the default
// simulated machine, a closed-form model (linear in l and o, inverse in g)
// is anchored to that measurement, and the anchored model is evaluated on
// the other architectures' published (p, l, o, g). The paper's k factor
// for cross-machine software differences is exposed as --k.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "crossover.hpp"
#include "models/calibration.hpp"
#include "models/nmin.hpp"
#include "machine/presets.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_table4_nmin",
                          "Table 4: n_min extrapolation to other machines");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size scanned");
  args.flag_i64("nmax", 1 << 18, "largest problem size scanned");
  args.flag_f64("k", 1.0, "software factor applied to non-default machines");
  args.flag_f64("tol", 0.10, "accuracy tolerance defining n_min");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const double k = args.f64("k");
  const double tol = args.f64("tol");

  // Measure the default machine's real crossover and anchor the model on
  // it. The sweep shares the "crossover" cache namespace with fig5 / fig6 /
  // sweep_p, so a prior run of any of those resolves this grid warm.
  const auto cal = models::calibrate(cfg.machine);
  bench::print_preamble("Table 4: n_min extrapolation", cfg, cal);
  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")),
                        std::sqrt(2.0));
  harness::SweepRunner runner(
      bench::runner_options(cfg, bench::kCrossoverWorkload));
  const auto job = bench::submit_samplesort_crossover(runner, cfg.machine,
                                                      sizes, cfg.reps, cfg.seed);
  const auto results = runner.run_all();
  const auto crossing = bench::fold_samplesort_crossover(job, cal, results);
  const double measured_per_proc =
      crossing.n_star > 0 ? crossing.n_star / cfg.machine.p : -1;

  const auto default_in = models::nmin_input_from(cfg.machine);
  const double model_default = models::nmin_per_proc_samplesort(default_in, tol);
  const double anchor =
      measured_per_proc > 0 ? measured_per_proc / model_default : 1.0;
  std::printf(
      "measured crossover on %s: n* = %.0f (n*/p = %.0f); model says %.0f; "
      "anchor factor %.3f\n\n",
      cfg.machine.name.c_str(), crossing.n_star, measured_per_proc,
      model_default, anchor);

  // Paper's Table 4 right-hand column for comparison.
  const struct {
    const char* name;
    double paper;
  } paper_rows[] = {{"default-sim", 8000},   {"berkeley-now", 4640},
                    {"pentium2-tcp", 325000}, {"cray-t3e", 1558},
                    {"intel-paragon", 15429}, {"meiko-cs2", 5325}};

  support::TextTable table({"architecture", "p", "l", "o", "g",
                            "n_min/p (ours)", "n_min/p (paper, x k)"});
  table.set_precision(4, 2);
  table.set_precision(5, 0);
  table.set_precision(6, 0);
  for (const auto& m : machine::table4_presets()) {
    const auto in = models::nmin_input_from(m);
    const double k_row = m.name == cfg.machine.name ? 1.0 : k;
    const double ours =
        anchor * models::nmin_per_proc_samplesort(in, tol, k_row);
    double paper = 0;
    for (const auto& row : paper_rows) {
      if (m.name == row.name) paper = row.paper;
    }
    table.add_row({m.name, static_cast<long long>(m.p),
                   static_cast<long long>(in.latency),
                   static_cast<long long>(in.overhead), in.gap_cpb, ours,
                   paper});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: same ordering as the paper — TCP/Ethernet worst by "
      "orders of magnitude, T3E best, NOW/CS-2 mid-range; absolute values "
      "within a small factor after anchoring.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
