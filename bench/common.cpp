#include "common.hpp"

#include <cstdio>

#include "machine/custom.hpp"
#include "machine/presets.hpp"
#include "support/contract.hpp"
#include "support/rng.hpp"

namespace qsm::bench {

void register_common_flags(support::ArgParser& args) {
  args.flag_str("machine", "default",
                "machine preset: default, now, tcp, t3e, paragon, cs2");
  args.flag_str("machine-file", "",
                "load a custom machine description instead of a preset");
  args.flag_i64("p", 0, "override processor count (0 = preset value)");
  args.flag_i64("reps", 3, "repetitions per configuration (paper used 10)");
  args.flag_i64("seed", 1, "base random seed");
  args.flag_str("csv", "", "also write the table to this CSV file");
  args.flag_i64("jobs", 0,
                "grid points simulated concurrently (0 = host thread budget)");
  args.flag_bool("no-cache", false,
                 "recompute every grid point, ignore the result cache");
  args.flag_str("cache-dir", "outputs/.cache",
                "content-addressed result cache location (one segment store "
                "per workload)");
  args.flag_str("cache-sync", "data",
                "cache durability: none (process-crash safe only), data "
                "(fdatasync per record), full (also fsync metadata + dir)");
  args.flag_str("lanes", "auto",
                "program lane engine: auto, threads, or fibers (host "
                "throughput only; traces are identical)");
  // Fault injection (all off by default; any nonzero probability changes
  // the cache keys, so fault-free caches are untouched).
  args.flag_f64("fault-drop", 0, "per-message drop probability");
  args.flag_f64("fault-dup", 0, "per-message duplication probability");
  args.flag_f64("fault-delay", 0, "per-message delay-spike probability");
  args.flag_i64("fault-delay-spike", 20000, "delay-spike size in cycles");
  args.flag_f64("fault-stall", 0, "per-node per-phase stall probability");
  args.flag_i64("fault-stall-cycles", 50000, "stall size in cycles");
  args.flag_f64("fault-slow", 0, "per-node per-phase slowdown probability");
  args.flag_f64("fault-slow-factor", 2.0,
                "compute multiplier for a slowed node (>= 1)");
  args.flag_f64("fault-node-fail", 0,
                "per-node per-phase failure probability (triggers replay)");
  args.flag_i64("fault-timeout", 8000, "ack timeout before retransmit, cycles");
  args.flag_f64("fault-backoff", 2.0, "retransmit backoff multiplier (>= 1)");
  args.flag_i64("fault-attempts", 8, "delivery attempts per message (1..62)");
  args.flag_i64("fault-seed", 1, "fault-draw seed (independent of --seed)");
  // Per-point robustness guards and crash recovery.
  args.flag_f64("point-timeout", 0,
                "host seconds per grid point before the watchdog fails it "
                "(0 = off)");
  args.flag_i64("point-rss-mb", 0,
                "process RSS budget in MB while a point runs (0 = off)");
  args.flag_bool("tolerate-failures", false,
                 "record throwing points as failure rows and keep sweeping");
  args.flag_bool("resume", false,
                 "accept cached failure rows instead of retrying them");
}

CommonConfig read_common_flags(const support::ArgParser& args) {
  CommonConfig cfg;
  const std::string& file = args.str("machine-file");
  cfg.machine = file.empty() ? machine::preset_by_name(args.str("machine"))
                             : machine::machine_from_file(file);
  const auto p = args.i64("p");
  if (p > 0) cfg.machine.p = static_cast<int>(p);
  cfg.reps = static_cast<int>(args.i64("reps"));
  QSM_REQUIRE(cfg.reps >= 1, "--reps must be at least 1");
  cfg.seed = static_cast<std::uint64_t>(args.i64("seed"));
  cfg.csv = args.str("csv");
  cfg.jobs = static_cast<int>(args.i64("jobs"));
  QSM_REQUIRE(cfg.jobs >= 0, "--jobs must be non-negative");
  cfg.cache = !args.boolean("no-cache");
  cfg.cache_dir = args.str("cache-dir");
  {
    const std::string& sync = args.str("cache-sync");
    const auto policy = support::durable::sync_policy_from_string(sync);
    QSM_REQUIRE(policy.has_value(),
                "--cache-sync must be none, data, or full");
    cfg.cache_sync = *policy;
  }
  cfg.lanes = rt::lane_mode_from_string(args.str("lanes"));
  // Installed process-wide: every Runtime the sweeps build (their Options
  // leave `lanes` at Auto) resolves through this default. Not part of any
  // cache key — lane mode cannot change a simulated number.
  rt::set_default_lane_mode(cfg.lanes);

  net::FaultParams& fault = cfg.machine.net.fault;
  fault.drop_prob = args.f64("fault-drop");
  fault.dup_prob = args.f64("fault-dup");
  fault.delay_prob = args.f64("fault-delay");
  fault.delay_cycles = args.i64("fault-delay-spike");
  fault.stall_prob = args.f64("fault-stall");
  fault.stall_cycles = args.i64("fault-stall-cycles");
  fault.slow_prob = args.f64("fault-slow");
  fault.slow_factor = args.f64("fault-slow-factor");
  fault.node_fail_prob = args.f64("fault-node-fail");
  fault.ack_timeout = args.i64("fault-timeout");
  fault.ack_backoff = args.f64("fault-backoff");
  fault.max_attempts = static_cast<int>(args.i64("fault-attempts"));
  fault.seed = static_cast<std::uint64_t>(args.i64("fault-seed"));
  fault.validate();

  cfg.point_timeout_s = args.f64("point-timeout");
  QSM_REQUIRE(cfg.point_timeout_s >= 0, "--point-timeout must be >= 0");
  cfg.point_rss_mb = args.i64("point-rss-mb");
  QSM_REQUIRE(cfg.point_rss_mb >= 0, "--point-rss-mb must be >= 0");
  cfg.tolerate_failures = args.boolean("tolerate-failures");
  cfg.resume = args.boolean("resume");
  return cfg;
}

harness::RunnerOptions runner_options(const CommonConfig& cfg,
                                      std::string workload) {
  harness::RunnerOptions opts;
  opts.workload = std::move(workload);
  opts.jobs = cfg.jobs;
  opts.cache = cfg.cache;
  opts.cache_dir = cfg.cache_dir;
  opts.cache_sync = cfg.cache_sync;
  opts.point_timeout_s = cfg.point_timeout_s;
  opts.point_rss_mb = cfg.point_rss_mb;
  opts.tolerate_failures = cfg.tolerate_failures;
  opts.resume = cfg.resume;
  return opts;
}

void print_runner_stats(const harness::SweepRunner& runner) {
  const harness::RunnerStats& s = runner.stats();
  std::printf(
      "harness: points=%zu cached=%zu computed=%zu failed=%zu resumed=%zu "
      "jobs=%d workers/job=%d compute=%.3fs cache=%s\n\n",
      s.points, s.cached, s.computed, s.failed, s.resumed, s.jobs,
      s.phase_workers_per_job, s.compute_seconds,
      runner.options().cache ? runner.options().cache_dir.c_str() : "off");
}

void fill_random_keys(std::vector<std::int64_t>& out, std::uint64_t n,
                      std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  out.resize(n);
  for (auto& x : out) x = static_cast<std::int64_t>(rng() >> 1);
}

std::vector<std::int64_t> random_keys(std::uint64_t n, std::uint64_t seed) {
  std::vector<std::int64_t> v;
  fill_random_keys(v, n, seed);
  return v;
}

const std::vector<std::int64_t>& scratch_keys(std::uint64_t n,
                                              std::uint64_t seed) {
  struct Scratch {
    std::vector<std::int64_t> keys;
    std::uint64_t n{0};
    std::uint64_t seed{0};
    bool valid{false};
  };
  thread_local Scratch scratch;
  if (!scratch.valid || scratch.n != n || scratch.seed != seed) {
    fill_random_keys(scratch.keys, n, seed);
    scratch.n = n;
    scratch.seed = seed;
    scratch.valid = true;
  }
  return scratch.keys;
}

RepeatedRuns summarize_runs(const std::vector<rt::RunResult>& runs) {
  std::vector<double> total;
  std::vector<double> comm;
  std::vector<double> compute;
  total.reserve(runs.size());
  comm.reserve(runs.size());
  compute.reserve(runs.size());
  for (const auto& r : runs) {
    total.push_back(static_cast<double>(r.total_cycles));
    comm.push_back(static_cast<double>(r.comm_cycles));
    compute.push_back(static_cast<double>(r.compute_cycles));
  }
  RepeatedRuns out;
  out.total = support::summarize(total);
  out.comm = support::summarize(comm);
  out.compute = support::summarize(compute);
  return out;
}

RepeatedRuns summarize_points(const std::vector<harness::PointResult>& results,
                              std::size_t first, std::size_t count) {
  QSM_REQUIRE(first + count <= results.size(), "point range out of bounds");
  std::vector<double> total;
  std::vector<double> comm;
  std::vector<double> compute;
  total.reserve(count);
  comm.reserve(count);
  compute.reserve(count);
  for (std::size_t i = first; i < first + count; ++i) {
    const rt::RunResult& r = results[i].timing;
    total.push_back(static_cast<double>(r.total_cycles));
    comm.push_back(static_cast<double>(r.comm_cycles));
    compute.push_back(static_cast<double>(r.compute_cycles));
  }
  RepeatedRuns out;
  out.total = support::summarize(total);
  out.comm = support::summarize(comm);
  out.compute = support::summarize(compute);
  return out;
}

void add_membench_machine(harness::KeyBuilder& key,
                          const membench::BankMachineConfig& m) {
  key.add("mb.name", m.name);
  key.add("mb.procs", m.procs);
  key.add("mb.banks", m.banks);
  key.add("mb.hz", m.clock.hz);
  key.add("mb.sw", m.sw_overhead);
  key.add("mb.lat", m.interconnect_latency);
  key.add("mb.occ", m.bank_occupancy);
  key.add("mb.out", m.outstanding);
}

void print_preamble(const std::string& title, const CommonConfig& cfg,
                    const models::Calibration& cal) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "machine %s: p=%d  g=%.2f c/B  o=%lld cy  l=%lld cy  clock=%.0f MHz\n",
      cfg.machine.name.c_str(), cfg.machine.p, cfg.machine.net.gap_cpb,
      static_cast<long long>(cfg.machine.net.overhead),
      static_cast<long long>(cfg.machine.net.latency),
      cfg.machine.cpu.clock.hz / 1e6);
  std::printf(
      "observed through library: put %.1f cy/word (%.1f c/B), "
      "get %.1f cy/word (%.1f c/B), L=%s cy, reps=%d\n\n",
      cal.put_cpw, cal.put_cpb(), cal.get_cpw, cal.get_cpb(),
      support::with_commas(cal.phase_overhead).c_str(), cfg.reps);
}

void emit(const support::TextTable& table, const CommonConfig& cfg) {
  std::printf("%s", table.to_string().c_str());
  if (!cfg.csv.empty()) {
    table.write_csv(cfg.csv);
    std::printf("(csv written to %s)\n", cfg.csv.c_str());
  }
  std::printf("\n");
}

std::vector<long long> parse_csv_i64(const std::string& spec) {
  std::vector<long long> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    out.push_back(std::stoll(spec.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::uint64_t> size_sweep(std::uint64_t lo, std::uint64_t hi,
                                      double factor) {
  QSM_REQUIRE(lo >= 1 && hi >= lo && factor > 1.0, "bad sweep bounds");
  std::vector<std::uint64_t> out;
  double v = static_cast<double>(lo);
  while (static_cast<std::uint64_t>(v) <= hi) {
    out.push_back(static_cast<std::uint64_t>(v));
    v *= factor;
  }
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

}  // namespace qsm::bench
