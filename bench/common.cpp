#include "common.hpp"

#include <cstdio>

#include "machine/custom.hpp"
#include "machine/presets.hpp"
#include "support/contract.hpp"
#include "support/rng.hpp"

namespace qsm::bench {

void register_common_flags(support::ArgParser& args) {
  args.flag_str("machine", "default",
                "machine preset: default, now, tcp, t3e, paragon, cs2");
  args.flag_str("machine-file", "",
                "load a custom machine description instead of a preset");
  args.flag_i64("p", 0, "override processor count (0 = preset value)");
  args.flag_i64("reps", 3, "repetitions per configuration (paper used 10)");
  args.flag_i64("seed", 1, "base random seed");
  args.flag_str("csv", "", "also write the table to this CSV file");
}

CommonConfig read_common_flags(const support::ArgParser& args) {
  CommonConfig cfg;
  const std::string& file = args.str("machine-file");
  cfg.machine = file.empty() ? machine::preset_by_name(args.str("machine"))
                             : machine::machine_from_file(file);
  const auto p = args.i64("p");
  if (p > 0) cfg.machine.p = static_cast<int>(p);
  cfg.reps = static_cast<int>(args.i64("reps"));
  QSM_REQUIRE(cfg.reps >= 1, "--reps must be at least 1");
  cfg.seed = static_cast<std::uint64_t>(args.i64("seed"));
  cfg.csv = args.str("csv");
  return cfg;
}

std::vector<std::int64_t> random_keys(std::uint64_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng() >> 1);
  return v;
}

RepeatedRuns summarize_runs(const std::vector<rt::RunResult>& runs) {
  std::vector<double> total;
  std::vector<double> comm;
  std::vector<double> compute;
  for (const auto& r : runs) {
    total.push_back(static_cast<double>(r.total_cycles));
    comm.push_back(static_cast<double>(r.comm_cycles));
    compute.push_back(static_cast<double>(r.compute_cycles));
  }
  RepeatedRuns out;
  out.total = support::summarize(total);
  out.comm = support::summarize(comm);
  out.compute = support::summarize(compute);
  return out;
}

void print_preamble(const std::string& title, const CommonConfig& cfg,
                    const models::Calibration& cal) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "machine %s: p=%d  g=%.2f c/B  o=%lld cy  l=%lld cy  clock=%.0f MHz\n",
      cfg.machine.name.c_str(), cfg.machine.p, cfg.machine.net.gap_cpb,
      static_cast<long long>(cfg.machine.net.overhead),
      static_cast<long long>(cfg.machine.net.latency),
      cfg.machine.cpu.clock.hz / 1e6);
  std::printf(
      "observed through library: put %.1f cy/word (%.1f c/B), "
      "get %.1f cy/word (%.1f c/B), L=%s cy, reps=%d\n\n",
      cal.put_cpw, cal.put_cpb(), cal.get_cpw, cal.get_cpb(),
      support::with_commas(cal.phase_overhead).c_str(), cfg.reps);
}

void emit(const support::TextTable& table, const CommonConfig& cfg) {
  std::printf("%s", table.to_string().c_str());
  if (!cfg.csv.empty()) {
    table.write_csv(cfg.csv);
    std::printf("(csv written to %s)\n", cfg.csv.c_str());
  }
  std::printf("\n");
}

std::vector<std::uint64_t> size_sweep(std::uint64_t lo, std::uint64_t hi,
                                      double factor) {
  QSM_REQUIRE(lo >= 1 && hi >= lo && factor > 1.0, "bad sweep bounds");
  std::vector<std::uint64_t> out;
  double v = static_cast<double>(lo);
  while (static_cast<std::uint64_t>(v) <= hi) {
    out.push_back(static_cast<std::uint64_t>(v));
    v *= factor;
  }
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

}  // namespace qsm::bench
