// Traffic-representation benchmark: what the sparse phase pipeline buys.
//
// The phase pipeline carries per-(source, owner) traffic either as CSR-style
// sparse lists (cost O(active pairs + p) per phase) or as the classic p x p
// matrices (cost O(p^2) regardless of how many pairs are active). This bench
// times both on the two extremes of the paper's workloads:
//
//   listrank at n = 4p — the irregular-communication workload at its
//       sparsest: O(1) list items per node, so each phase touches a few
//       thousand pairs while the dense form walks tens of millions of
//       matrix cells at p = 4096;
//   samplesort — the key exchange is a genuine all-to-all, where Auto's
//       density pre-pass must bail to the dense form and cost no more than
//       a few percent over forcing it.
//
// Reported as phases/sec, forced-dense vs auto, with the auto runs' mode
// counters showing which representation actually ran. Both modes must
// produce bit-identical traces (the sparse-parity suite is the real
// oracle; the JSON records the check). Emits BENCH_sparsity.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algos/listrank.hpp"
#include "algos/samplesort.hpp"
#include "common.hpp"
#include "core/runtime.hpp"
#include "support/json.hpp"

namespace {

using namespace qsm;

struct ModeTiming {
  double best_seconds{0};
  std::uint64_t phases{0};
  std::uint64_t sparse_phases{0};
  std::uint64_t dense_phases{0};
  rt::RunResult trace;
};

struct Row {
  std::string workload;
  int p{0};
  std::uint64_t n{0};
  ModeTiming dense;
  ModeTiming autod;
  bool identical{false};
};

/// Smallest power-of-two n satisfying sample sort's p^2 * ceil(log2 n) <= n.
std::uint64_t sort_n_for(int p) {
  const auto p2 = static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p);
  std::uint64_t n = 1ULL << 14;
  const auto ceil_log2 = [](std::uint64_t v) {
    std::uint64_t lg = 0;
    while ((1ULL << lg) < v) ++lg;
    return lg;
  };
  while (p2 * ceil_log2(n) > n) n <<= 1;
  return n;
}

/// Times `reps` runs of `run_once` on one long-lived runtime (one warmup
/// run first: lanes spawn and every phase's exchange pattern lands in the
/// comm memo, so timed reps measure the pipeline, not first-touch DES).
template <typename MakeRuntime, typename RunOnce>
ModeTiming time_mode(MakeRuntime make_runtime, RunOnce run_once, int reps) {
  auto runtime = make_runtime();
  ModeTiming t;
  t.trace = run_once(*runtime);
  t.phases = t.trace.phases;
  t.best_seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_once(*runtime);
    const auto t1 = std::chrono::steady_clock::now();
    QSM_REQUIRE(r.phases == t.trace.phases, "phase count drifted across reps");
    t.best_seconds = std::min(
        t.best_seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  t.sparse_phases = runtime->host_sparse_phases();
  t.dense_phases = runtime->host_dense_phases();
  return t;
}

Row listrank_row(const machine::MachineConfig& base, int p, int reps,
                 std::uint64_t seed) {
  Row row;
  row.workload = "listrank";
  row.p = p;
  row.n = static_cast<std::uint64_t>(4) * static_cast<std::uint64_t>(p);
  const auto list = algos::make_random_list(row.n, seed ^ 5);
  const auto make = [&](rt::TrafficMode mode) {
    return [&base, p, mode, seed] {
      auto variant = base;
      variant.p = p;
      return std::make_unique<rt::Runtime>(
          variant, rt::Options{.seed = seed, .traffic = mode});
    };
  };
  const auto once = [&](rt::Runtime& runtime) {
    auto ranks = runtime.alloc<std::int64_t>(row.n);
    auto timing = algos::list_rank(runtime, list, ranks).timing;
    runtime.free(ranks);
    return timing;
  };
  row.dense = time_mode(make(rt::TrafficMode::Dense), once, reps);
  row.autod = time_mode(make(rt::TrafficMode::Auto), once, reps);
  row.identical = row.dense.trace == row.autod.trace;
  return row;
}

Row samplesort_row(const machine::MachineConfig& base, int p, int reps,
                   std::uint64_t seed) {
  Row row;
  row.workload = "samplesort";
  row.p = p;
  row.n = sort_n_for(p);
  const auto& keys = bench::scratch_keys(row.n, seed ^ 7);
  const auto make = [&](rt::TrafficMode mode) {
    return [&base, p, mode, seed] {
      auto variant = base;
      variant.p = p;
      return std::make_unique<rt::Runtime>(
          variant, rt::Options{.seed = seed, .traffic = mode});
    };
  };
  const auto once = [&](rt::Runtime& runtime) {
    auto data = runtime.alloc<std::int64_t>(row.n);
    runtime.host_fill(data, keys);
    auto timing = algos::sample_sort(runtime, data).timing;
    runtime.free(data);
    return timing;
  };
  row.dense = time_mode(make(rt::TrafficMode::Dense), once, reps);
  row.autod = time_mode(make(rt::TrafficMode::Auto), once, reps);
  row.identical = row.dense.trace == row.autod.trace;
  return row;
}

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_sparsity",
                          "dense vs sparse per-phase traffic representation: "
                          "phases/sec on sparse (listrank) and all-to-all "
                          "(samplesort) workloads");
  bench::register_common_flags(args);
  args.flag_str("procs", "64,256,1024,4096",
                "listrank processor counts (n = 4p each)");
  args.flag_str("sort-procs", "64,256",
                "samplesort processor counts (n = smallest feasible)");
  args.flag_str("out", "BENCH_sparsity.json", "machine-readable output file");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto procs = bench::parse_csv_i64(args.str("procs"));
  const auto sort_procs = bench::parse_csv_i64(args.str("sort-procs"));

  std::printf(
      "== Traffic representation (machine %s, %d reps, best-of) ==\n\n",
      cfg.machine.name.c_str(), cfg.reps);

  std::vector<Row> rows;
  for (const long long pll : procs) {
    rows.push_back(
        listrank_row(cfg.machine, static_cast<int>(pll), cfg.reps, cfg.seed));
  }
  for (const long long pll : sort_procs) {
    rows.push_back(samplesort_row(cfg.machine, static_cast<int>(pll),
                                  cfg.reps, cfg.seed));
  }

  support::TextTable table({"workload", "p", "n", "dense ph/s", "auto ph/s",
                            "speedup", "auto sparse/dense phases"});
  table.set_precision(3, 1);
  table.set_precision(4, 1);
  table.set_precision(5, 2);
  for (const Row& row : rows) {
    table.add_row({row.workload, static_cast<long long>(row.p),
                   static_cast<long long>(row.n),
                   static_cast<double>(row.dense.phases) /
                       row.dense.best_seconds,
                   static_cast<double>(row.autod.phases) /
                       row.autod.best_seconds,
                   row.dense.best_seconds / row.autod.best_seconds,
                   std::to_string(row.autod.sparse_phases) + "/" +
                       std::to_string(row.autod.dense_phases)});
  }
  bench::emit(table, cfg);

  bool all_identical = true;
  for (const Row& row : rows) all_identical = all_identical && row.identical;
  std::printf("traces identical across representations: %s\n",
              all_identical ? "yes" : "NO — determinism bug");

  support::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("sparsity");
  json.key("machine");
  json.value(cfg.machine.name);
  json.key("reps");
  json.value(static_cast<std::int64_t>(cfg.reps));
  json.key("traces_identical");
  json.value(all_identical);
  json.key("grid");
  json.begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("workload");
    json.value(row.workload);
    json.key("p");
    json.value(static_cast<std::int64_t>(row.p));
    json.key("n");
    json.value(static_cast<std::uint64_t>(row.n));
    json.key("phases");
    json.value(row.dense.phases);
    json.key("dense_seconds");
    json.value(row.dense.best_seconds);
    json.key("auto_seconds");
    json.value(row.autod.best_seconds);
    json.key("dense_phases_per_sec");
    json.value(static_cast<double>(row.dense.phases) / row.dense.best_seconds);
    json.key("auto_phases_per_sec");
    json.value(static_cast<double>(row.autod.phases) / row.autod.best_seconds);
    json.key("speedup");
    json.value(row.dense.best_seconds / row.autod.best_seconds);
    json.key("auto_sparse_phases");
    json.value(row.autod.sparse_phases);
    json.key("auto_dense_phases");
    json.value(row.autod.dense_phases);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const std::string out_path = args.str("out");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", json.str().c_str());
  std::fclose(f);
  std::printf("(json written to %s)\n", out_path.c_str());
  std::printf(
      "expected shape: auto rides the sparse representation on listrank "
      "(speedup growing ~p^2/active-pairs) and falls back to dense on "
      "samplesort (speedup ~1.0, the pre-pass is noise).\n");
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
