// The experiment the paper could not run.
//
// Section 3.3: "Due to memory limitations of our simulation
// infrastructure, we were not able to vary p over a wide enough range to
// examine this relationship for p." Our substrate has no such limitation:
// this harness measures the crossover problem size n* (as in Figures 5/6)
// while sweeping the processor count, testing the paper's conjecture that
// n* grows roughly linearly in p as well.
//
// Calibration and predictions are per-p (the barrier cost L and the plan
// both scale with p), exactly as a designer would redo the analysis for a
// wider machine.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "crossover.hpp"
#include "models/calibration.hpp"
#include "support/stats.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_sweep_p",
                          "crossover problem size vs processor count (the "
                          "sweep the paper could not run)");
  bench::register_common_flags(args);
  args.flag_i64("nmin", 1 << 12, "smallest problem size scanned");
  args.flag_i64("nmax", 1 << 18, "largest problem size scanned");
  args.flag_str("procs", "4,8,16,32,64,128,256,512,1024,2048,4096",
                "comma-separated processor counts");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);

  std::vector<int> procs;
  for (const long long p : bench::parse_csv_i64(args.str("procs"))) {
    procs.push_back(static_cast<int>(p));
  }

  std::printf("== Crossover vs processor count (machine %s) ==\n\n",
              cfg.machine.name.c_str());

  const auto sizes =
      bench::size_sweep(static_cast<std::uint64_t>(args.i64("nmin")),
                        static_cast<std::uint64_t>(args.i64("nmax")),
                        std::sqrt(2.0));

  // Sample sort's precondition (p <= ~sqrt(n / log n), and at least p
  // elements per node) rules the smallest sizes out at the widest machine
  // widths, so each p scans only its feasible slice of the grid.
  const auto feasible = [](int p, std::uint64_t n) {
    if (p <= 1) return true;
    const auto up = static_cast<std::uint64_t>(p);
    const auto lg = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(std::log2(static_cast<double>(n)))));
    return up * up * lg <= 4 * n && n >= up * up;
  };

  // One crossover sweep per machine width, all sharing the "crossover"
  // cache namespace with fig5 / fig6 / table4.
  harness::SweepRunner runner(
      bench::runner_options(cfg, bench::kCrossoverWorkload));
  struct WidthJob {
    int p;
    bench::CrossoverJob job;
  };
  std::vector<WidthJob> jobs;
  for (const int p : procs) {
    std::vector<std::uint64_t> slice;
    for (const std::uint64_t n : sizes) {
      if (feasible(p, n)) slice.push_back(n);
    }
    if (slice.empty()) {
      // Per-p n-windowing: at the widest machine widths the feasibility
      // floor sits above the whole global [nmin, nmax] scan, so slide a
      // short window up to the floor instead of skipping the width. The
      // window stays on a power-of-two anchor (floor rounded up), so
      // repeated runs and explicitly-windowed runs share cache keys.
      // Note the memory cost is the algorithm's, not the harness's: the
      // sample matrix alone is p^2 * 4*ceil(lg n) words (~15 GB at
      // p = 4096), so the widest widths want a large-memory host.
      std::uint64_t floor_n = 1;
      while (!feasible(p, floor_n)) floor_n <<= 1;
      slice = bench::size_sweep(floor_n, 2 * floor_n, std::sqrt(2.0));
      std::printf(
          "p=%d: [%lld, %lld] is below this width's feasibility floor; "
          "window slid to [%llu, %llu]\n",
          p, args.i64("nmin"), args.i64("nmax"),
          static_cast<unsigned long long>(slice.front()),
          static_cast<unsigned long long>(slice.back()));
    }
    auto variant = cfg.machine;
    variant.p = p;
    jobs.push_back({p, bench::submit_samplesort_crossover(
                           runner, variant, slice, cfg.reps, cfg.seed)});
  }
  const auto results = runner.run_all();

  support::TextTable table({"p", "L (cy)", "crossover n*", "n*/p"});
  table.set_precision(2, 0);
  table.set_precision(3, 0);
  std::vector<double> ps;
  std::vector<double> ns;
  for (const WidthJob& wj : jobs) {
    const int p = wj.p;
    auto variant = cfg.machine;
    variant.p = p;
    // Calibration and predictions are per-p; the fold prices the cached
    // sort runs against this width's calibration.
    const auto cal = models::calibrate(variant);
    const auto res = bench::fold_samplesort_crossover(wj.job, cal, results);
    table.add_row({static_cast<long long>(p),
                   static_cast<long long>(cal.phase_overhead), res.n_star,
                   res.n_star > 0 ? res.n_star / p : -1.0});
    if (res.n_star > 0) {
      ps.push_back(static_cast<double>(p));
      ns.push_back(res.n_star);
    }
  }
  bench::emit(table, cfg);

  if (ps.size() >= 3) {
    const auto fit = support::fit_line(ps, ns);
    // Also fit n*/p against p: the n_min model (models/nmin.hpp) says the
    // per-processor crossover grows like (p-1) because every node pays
    // o per peer per phase.
    std::vector<double> per_proc;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      per_proc.push_back(ns[i] / ps[i]);
    }
    const auto fit_pp = support::fit_line(ps, per_proc);
    std::printf(
        "fits: n* = %.0f*p %+.0f (R^2=%.3f);  n*/p = %.0f*p %+.0f "
        "(R^2=%.3f)\n"
        "measured shape: n* grows SUPER-linearly in p — n*/p itself grows "
        "~linearly, as the n_min model's o*(p-1) per-phase term predicts. "
        "The paper conjectured a linear p relationship but could not "
        "measure it; the finer-grained answer is quadratic-ish in p.\n",
        fit.slope, fit.intercept, fit.r2, fit_pp.slope, fit_pp.intercept,
        fit_pp.r2);
  } else {
    std::printf("not enough crossovers found; widen --nmax.\n");
  }
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
