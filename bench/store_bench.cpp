// Durable-store benchmark: what the segmented result store costs and buys.
//
// The result cache persists every computed grid point through a
// checksummed segment store (support/durable/segment_store.hpp). Three
// costs matter to a sweep:
//
//   1. Append throughput per sync policy. Every record rides the
//      typestate pipeline (Pending -> Written -> Synced -> Indexed); the
//      --cache-sync policy decides how much of that pipeline touches the
//      disk per record. `none` is an in-page-cache append (process-crash
//      safe only), `data` adds an fdatasync per record, `full` also
//      fsyncs file metadata and the directory on create/seal/compact.
//      This section measures the append+certify rate of each policy over
//      the same record stream — the price list behind the flag.
//
//   2. Warm open. A warm sweep's first cache probe pays one full
//      recovery scan (every frame re-CRC'd) and then serves every lookup
//      from the snapshot index. Measured: recovery records/s through
//      ResultCache (scan + parse + index prime) and warm lookups/s
//      against the primed index.
//
//   3. Compaction. A store whose keys were superseded (failure rows
//      retried, points recomputed) carries dead records until compaction
//      rewrites the live set into one fresh segment (write, fsync,
//      rename, fsync dir). Measured on a half-dead store: wall seconds
//      and input records/s.
//
// BENCH_store.json mirrors the tables for the CI artifact.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "harness/cache.hpp"
#include "harness/point.hpp"
#include "support/cli.hpp"
#include "support/contract.hpp"
#include "support/durable/record.hpp"
#include "support/durable/segment_store.hpp"
#include "support/json.hpp"
#include "support/snapcache.hpp"
#include "support/table.hpp"

namespace {

using namespace qsm;
namespace fs = std::filesystem;
using support::durable::SegmentStore;
using support::durable::StoreOptions;
using support::durable::SyncPolicy;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void reset_dir(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
}

std::string record_key(std::size_t i) {
  return "epoch=qsm1;workload=bench_store;i=" + std::to_string(i);
}

/// A value shaped like a serialized PointResult of `value_bytes` total.
std::string record_value(std::size_t i, std::size_t value_bytes) {
  std::string v = "{\"t\":" + std::to_string(1000 + i) + ",\"pad\":\"";
  while (v.size() + 2 < value_bytes) {
    v += static_cast<char>('a' + (v.size() + i) % 26);
  }
  v += "\"}";
  return v;
}

/// Appends + certifies `records` values through the typestate pipeline.
/// Returns wall seconds.
double run_appends(const std::string& dir, SyncPolicy policy,
                   std::size_t records, std::size_t value_bytes,
                   std::uint64_t* bytes_out) {
  reset_dir(dir);
  StoreOptions opts;
  opts.sync = policy;
  opts.auto_compact = false;
  SegmentStore store(dir, opts);
  std::uint64_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < records; ++i) {
    auto pending = store.make(record_key(i), record_value(i, value_bytes));
    bytes += pending.frame_bytes();
    auto written = store.append(std::move(pending));
    QSM_REQUIRE(written.has_value(), "append failed mid-bench");
    auto synced = store.sync(std::move(*written));
    QSM_REQUIRE(synced.has_value(), "sync failed mid-bench");
    (void)store.publish(std::move(*synced));
  }
  const double dt = seconds_since(t0);
  QSM_REQUIRE(store.records() == records, "store lost records");
  if (bytes_out != nullptr) *bytes_out = bytes;
  return dt;
}

harness::PointResult make_result(std::size_t i) {
  harness::PointResult r;
  r.timing.total_cycles = static_cast<std::int64_t>(1000 + i);
  r.timing.comm_cycles = static_cast<std::int64_t>(400 + i % 7);
  r.timing.compute_cycles = static_cast<std::int64_t>(600 + i % 11);
  r.metrics = {{"z", 0.37 + static_cast<double>(i % 5)},
               {"remote_fraction", 1.0 / 3.0}};
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_store",
      "segment-store durability: append rate per sync policy, warm "
      "open/lookup throughput, compaction cost");
  args.flag_i64("records", 2000, "records per append run");
  args.flag_i64("value-bytes", 256, "approximate serialized value size");
  args.flag_i64("lookups", 200000, "warm lookups against the primed index");
  args.flag_i64("reps", 3, "attempts per cell (best wall-clock kept)");
  args.flag_bool("quick", false, "CI smoke: tiny record/lookup counts");
  args.flag_str("scratch", "bench_store_scratch",
                "scratch directory (wiped and recreated per section)");
  args.flag_str("out", "BENCH_store.json", "machine-readable output file");
  if (!args.parse(argc, argv)) return 0;

  const bool quick = args.boolean("quick");
  const auto records =
      static_cast<std::size_t>(quick ? 300 : args.i64("records"));
  const auto value_bytes = static_cast<std::size_t>(args.i64("value-bytes"));
  const std::int64_t lookups = quick ? 5000 : args.i64("lookups");
  const int reps = quick ? 1 : static_cast<int>(args.i64("reps"));
  const std::string scratch = args.str("scratch");

  std::printf(
      "== Durable segment store (%zu records, ~%zu-byte values, reps=%d) "
      "==\n\n",
      records, value_bytes, reps);

  // 1. Append throughput per sync policy.
  struct PolicyRow {
    SyncPolicy policy;
    double per_s;
    double mb_per_s;
  };
  std::vector<PolicyRow> policy_rows;
  for (const SyncPolicy policy :
       {SyncPolicy::None, SyncPolicy::Data, SyncPolicy::Full}) {
    double best = 1e30;
    std::uint64_t bytes = 0;
    for (int rep = 0; rep < reps; ++rep) {
      best = std::min(
          best, run_appends(scratch + "/append.qstore", policy, records,
                            value_bytes, &bytes));
    }
    policy_rows.push_back(
        {policy, static_cast<double>(records) / best,
         static_cast<double>(bytes) / best / (1024.0 * 1024.0)});
  }
  support::TextTable append_table(
      {"sync policy", "appends/s", "MB/s", "vs none"});
  append_table.set_precision(1, 0);
  append_table.set_precision(2, 2);
  append_table.set_precision(3, 3);
  for (const PolicyRow& row : policy_rows) {
    append_table.add_row({std::string(to_string(row.policy)), row.per_s,
                          row.mb_per_s, row.per_s / policy_rows[0].per_s});
  }
  std::printf("%s\n", append_table.to_string().c_str());

  // 2. Warm open: recovery scan + index prime, then warm lookups, through
  // the same ResultCache the sweep scheduler uses.
  double open_s = 1e30;
  double lookup_s = 1e30;
  {
    const std::string cache_dir = scratch + "/cache";
    reset_dir(cache_dir);
    std::vector<harness::PointKey> keys;
    keys.reserve(records);
    for (std::size_t i = 0; i < records; ++i) {
      keys.push_back(harness::PointKey{record_key(i)});
    }
    {
      StoreOptions opts;
      opts.sync = SyncPolicy::None;
      harness::ResultCache seed(cache_dir, "bench_store",
                                support::snap::Mode::Serial, opts);
      for (std::size_t i = 0; i < records; ++i) {
        seed.store_one(keys[i], make_result(i));
      }
    }
    for (int rep = 0; rep < reps; ++rep) {
      harness::ResultCache cache(cache_dir, "bench_store",
                                 support::snap::Mode::Serial);
      const auto t0 = std::chrono::steady_clock::now();
      QSM_REQUIRE(cache.loaded_entries() == records, "warm open lost records");
      open_s = std::min(open_s, seconds_since(t0));
      const auto t1 = std::chrono::steady_clock::now();
      std::uint64_t rng = 0x9e37;
      std::int64_t sink = 0;
      for (std::int64_t i = 0; i < lookups; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const harness::PointKey& key = keys[(rng >> 33) % keys.size()];
        const harness::PointResult* hit = cache.lookup(key);
        QSM_REQUIRE(hit != nullptr, "warm lookup missed — bench is broken");
        sink += hit->timing.total_cycles;
      }
      QSM_REQUIRE(sink != 0, "checksum collapsed to zero");
      lookup_s = std::min(lookup_s, seconds_since(t1));
    }
  }
  const double open_per_s = static_cast<double>(records) / open_s;
  const double lookups_per_s = static_cast<double>(lookups) / lookup_s;
  std::printf("warm open: %zu records in %.4fs (%.0f records/s)\n", records,
              open_s, open_per_s);
  std::printf("warm lookups: %.0f lookups/s over %lld probes\n\n",
              lookups_per_s, static_cast<long long>(lookups));

  // 3. Compaction of a half-dead store: every key written twice, so the
  // live set is half the log.
  double compact_s = 1e30;
  std::uint64_t dead_before = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::string dir = scratch + "/compact.qstore";
    reset_dir(dir);
    StoreOptions opts;
    opts.sync = SyncPolicy::None;
    opts.auto_compact = false;
    SegmentStore store(dir, opts);
    for (std::size_t pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < records; ++i) {
        auto written =
            store.append(store.make(record_key(i), record_value(i + pass,
                                                                value_bytes)));
        QSM_REQUIRE(written.has_value(), "append failed mid-bench");
      }
    }
    dead_before = store.dead_records();
    const auto t0 = std::chrono::steady_clock::now();
    store.compact();
    compact_s = std::min(compact_s, seconds_since(t0));
    QSM_REQUIRE(store.records() == records, "compaction lost records");
    QSM_REQUIRE(store.dead_records() == 0, "compaction kept dead records");
  }
  const double compact_in_per_s =
      static_cast<double>(2 * records) / compact_s;
  std::printf(
      "compaction: %zu records (%llu dead) -> %zu live in %.4fs "
      "(%.0f input records/s)\n\n",
      2 * records, static_cast<unsigned long long>(dead_before), records,
      compact_s, compact_in_per_s);

  support::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("store");
  json.key("records");
  json.value(static_cast<std::int64_t>(records));
  json.key("value_bytes");
  json.value(static_cast<std::int64_t>(value_bytes));
  json.key("lookups");
  json.value(lookups);
  json.key("reps");
  json.value(static_cast<std::int64_t>(reps));
  json.key("quick");
  json.value(quick);
  json.key("append");
  json.begin_array();
  for (const PolicyRow& row : policy_rows) {
    json.begin_object();
    json.key("sync");
    json.value(std::string(to_string(row.policy)));
    json.key("appends_per_s");
    json.value(row.per_s);
    json.key("mb_per_s");
    json.value(row.mb_per_s);
    json.key("vs_none");
    json.value(row.per_s / policy_rows[0].per_s);
    json.end_object();
  }
  json.end_array();
  json.key("warm_open_records_per_s");
  json.value(open_per_s);
  json.key("warm_lookups_per_s");
  json.value(lookups_per_s);
  json.key("compact_input_records_per_s");
  json.value(compact_in_per_s);
  json.key("compact_seconds");
  json.value(compact_s);
  json.end_object();

  const std::string out_path = args.str("out");
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", json.str().c_str());
  std::fclose(f);
  std::printf("(json written to %s)\n", out_path.c_str());
  std::printf(
      "expected shape: `none` appends at memory speed, `data` pays one "
      "fdatasync per record, `full` a little more; warm lookups run far "
      "above any append rate (they never touch the disk); compaction "
      "streams the live half of the log at sequential-write speed.\n");

  std::error_code ec;
  fs::remove_all(scratch, ec);
  return 0;
}
