// Ablation: pipelining remote accesses (Table 1's "hide latency by
// pipelining" contract), on the memory-bank microbenchmark.
//
// A blocking access pays the full round trip every time; allowing k
// outstanding accesses overlaps the interconnect flight time until the
// serialization point (bank or CPU) saturates — Little's law in a table.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "membench/membench.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_pipelining",
                          "ablation: outstanding-access window vs "
                          "throughput");
  bench::register_common_flags(args);
  args.flag_i64("accesses", 2000, "accesses per processor");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto accesses = static_cast<std::uint64_t>(args.i64("accesses"));

  std::printf("== Ablation: pipelining (Random pattern) ==\n\n");

  const std::vector<membench::BankMachineConfig> presets{
      membench::cray_t3e_shmem(), membench::now_bsplib()};
  const std::vector<int> windows{1, 2, 4, 8, 16};

  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_pipelining"));
  for (const auto& preset : presets) {
    for (const int window : windows) {
      auto m = preset;
      m.outstanding = window;
      harness::KeyBuilder key("membench");
      bench::add_membench_machine(key, m);
      key.add("pattern", membench::to_string(membench::Pattern::Random));
      key.add("accesses", accesses);
      key.add("seed", cfg.seed);
      runner.submit(key.build(), [&cfg, m, accesses] {
        const auto r = membench::run_membench(m, membench::Pattern::Random,
                                              accesses, cfg.seed);
        harness::PointResult out;
        out.metrics["avg_access_us"] = r.avg_access_us;
        out.metrics["makespan"] = static_cast<double>(r.makespan);
        return out;
      });
    }
  }
  const auto results = runner.run_all();

  std::size_t at = 0;
  for (const auto& preset : presets) {
    std::printf("-- %s (p=%d, latency %lld cy) --\n", preset.name.c_str(),
                preset.procs,
                static_cast<long long>(preset.interconnect_latency));
    support::TextTable table({"outstanding", "avg access us",
                              "makespan (cy)", "speedup vs blocking"});
    table.set_precision(1, 2);
    table.set_precision(3, 2);
    double blocking_makespan = 0;
    for (const int window : windows) {
      const auto& r = results[at++];
      const double makespan = r.metric("makespan");
      if (window == 1) blocking_makespan = makespan;
      table.add_row({static_cast<long long>(window), r.metric("avg_access_us"),
                     static_cast<long long>(makespan),
                     blocking_makespan / makespan});
    }
    bench::emit(table, cfg);
  }
  std::printf(
      "expected shape: speedup grows with the window while the flight time "
      "dominates, then flattens once the serialization point (bank or "
      "issuing CPU) saturates — latency is hidden, not removed.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
