// Host-side sync() throughput microbenchmark.
//
// Not a paper figure: this measures the *simulator's own* speed, the
// words-per-wall-clock-second the phase pipeline pushes through
// classify / move / price for a big all-remote exchange. It is the number
// that bounds how far the n / l / o sweeps can be pushed, and the
// regression guard for the Store / PhasePipeline / Executor layering
// (roughly 2.5x the monolithic runtime's throughput on a single core:
// 55.6 -> ~140 Mwords/s on the default 16-node 1M-word exchange).
//
// Simulated timing is printed once and is identical across reps and
// worker counts by the pipeline's determinism contract; only the host
// seconds vary.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "machine/presets.hpp"
#include "support/cli.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_micro_sync",
                          "host-side sync() throughput microbenchmark");
  args.flag_i64("procs", 16, "simulated processors");
  args.flag_i64("words", 1 << 20, "words exchanged per phase (all nodes)");
  args.flag_i64("reps", 5, "timed repetitions");
  args.flag_i64("workers", 0,
                "phase worker threads (0 = host default, 1 = serial)");
  args.flag_str("layout", "cyclic", "array layout: block|cyclic|hashed");
  if (!args.parse(argc, argv)) return 0;

  const int p = static_cast<int>(args.i64("procs"));
  const auto n = static_cast<std::uint64_t>(args.i64("words"));
  const int reps = static_cast<int>(args.i64("reps"));
  const std::string layout_name = args.str("layout");
  rt::Layout layout = rt::Layout::Cyclic;
  if (layout_name == "block") {
    layout = rt::Layout::Block;
  } else if (layout_name == "hashed") {
    layout = rt::Layout::Hashed;
  } else if (layout_name != "cyclic") {
    std::fprintf(stderr, "unknown --layout '%s' (want block|cyclic|hashed)\n",
                 layout_name.c_str());
    return 2;
  }

  rt::Runtime runtime(
      machine::default_sim(p),
      rt::Options{.host_workers = static_cast<int>(args.i64("workers"))});
  auto a = runtime.alloc<std::int64_t>(n, layout);
  const std::uint64_t per = n / static_cast<std::uint64_t>(p);

  // Each phase moves `n` words: every node puts its slice, syncs, then
  // gets its neighbour's slice (all-remote under cyclic layout except the
  // 1/p locally-owned fraction) and syncs again -> 2n words per run().
  const auto exchange = [&](rt::Context& ctx) {
    const auto rank = static_cast<std::uint64_t>(ctx.rank());
    std::vector<std::int64_t> out(per, static_cast<std::int64_t>(rank));
    ctx.put_range(a, rank * per, per, out.data());
    ctx.sync();
    std::vector<std::int64_t> in(per);
    ctx.get_range(a, ((rank + 1) % static_cast<std::uint64_t>(p)) * per, per,
                  in.data());
    ctx.sync();
  };

  std::printf(
      "== micro_sync: p=%d, %llu words/phase, layout %s, %d phase workers "
      "==\n\n",
      p, static_cast<unsigned long long>(n), layout_name.c_str(),
      runtime.host_phase_workers());

  const auto warm = runtime.run(exchange);  // warm lanes, pools, buffers
  std::printf("simulated: total %lld cycles, comm %lld cycles, rw_total "
              "%llu words\n",
              static_cast<long long>(warm.total_cycles),
              static_cast<long long>(warm.comm_cycles),
              static_cast<unsigned long long>(warm.rw_total));
  const std::uint64_t threads_after_warmup = runtime.host_threads_created();

  double best_wps = 0.0;
  double sum_wps = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = runtime.run(exchange);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double wps = 2.0 * static_cast<double>(n) / secs;
    best_wps = wps > best_wps ? wps : best_wps;
    sum_wps += wps;
    std::printf("rep %d: %.4f s host, %.2f Mwords/s (simulated total %lld "
                "unchanged: %s)\n",
                r, secs, wps / 1e6, static_cast<long long>(res.total_cycles),
                res.total_cycles == warm.total_cycles ? "yes" : "NO");
    if (res.total_cycles != warm.total_cycles) return 1;
  }
  std::printf("\nhost throughput: best %.2f Mwords/s, mean %.2f Mwords/s\n",
              best_wps / 1e6, sum_wps / (1e6 * reps));

  const std::uint64_t threads_now = runtime.host_threads_created();
  std::printf("executor reuse: %llu OS threads after warmup, %llu after %d "
              "more runs (%s)\n",
              static_cast<unsigned long long>(threads_after_warmup),
              static_cast<unsigned long long>(threads_now), reps,
              threads_now == threads_after_warmup ? "reused" : "RESPAWNED");
  return threads_now == threads_after_warmup ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
