// Ablation: the exchange send schedule.
//
// The paper's library exchanges data "in an order designed to reduce
// contention and avoid deadlock". This bench quantifies that choice by
// running the same all-to-all through the network model with the staggered
// round-robin schedule versus the naive fixed-target order that convoys
// one receiver at a time.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "net/exchange.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_ablate_schedule",
                          "ablation: staggered vs naive exchange schedule");
  bench::register_common_flags(args);
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);

  std::printf("== Ablation: exchange send schedule (machine %s, p=%d) ==\n\n",
              cfg.machine.name.c_str(), cfg.machine.p);

  const std::vector<std::int64_t> sizes{64, 512, 4096, 32768, 262144};
  harness::SweepRunner runner(bench::runner_options(cfg, "ablate_schedule"));
  for (const std::int64_t bytes : sizes) {
    harness::KeyBuilder key("exchange_schedule");
    key.add("machine", cfg.machine);
    key.add("bytes", bytes);
    runner.submit(key.build(), [&cfg, bytes] {
      net::ExchangeSpec spec;
      spec.p = cfg.machine.p;
      spec.start.assign(static_cast<std::size_t>(cfg.machine.p), 0);
      for (int i = 0; i < cfg.machine.p; ++i) {
        for (int j = 0; j < cfg.machine.p; ++j) {
          if (i != j) spec.transfers.push_back({i, j, bytes});
        }
      }
      spec.order = net::ExchangeSpec::SendOrder::Staggered;
      const auto staggered =
          net::simulate_exchange(cfg.machine.net, cfg.machine.sw, spec);
      spec.order = net::ExchangeSpec::SendOrder::FixedTarget;
      const auto naive =
          net::simulate_exchange(cfg.machine.net, cfg.machine.sw, spec);
      harness::PointResult out;
      out.metrics["staggered"] = static_cast<double>(staggered.finish);
      out.metrics["naive"] = static_cast<double>(naive.finish);
      return out;
    });
  }
  const auto results = runner.run_all();

  support::TextTable table({"bytes/pair", "staggered (cy)", "naive (cy)",
                            "naive/staggered"});
  table.set_precision(3, 2);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double staggered = results[i].metric("staggered");
    const double naive = results[i].metric("naive");
    table.add_row({static_cast<long long>(sizes[i]),
                   static_cast<long long>(staggered),
                   static_cast<long long>(naive), naive / staggered});
  }
  bench::emit(table, cfg);
  std::printf(
      "expected shape: naive/staggered > 1 and growing with message size — "
      "the staggered schedule exists for a reason.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
