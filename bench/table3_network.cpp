// Table 3: raw hardware parameters vs performance observed through the
// bulk-synchronous shared-memory library.
//
// The paper's numbers for the default simulated system: 3 cycles/byte
// hardware gap becomes 35 cycles/byte for puts and 287 cycles/byte for
// gets through the library, and a 16-processor barrier costs 25,500 cycles
// (64 us). We measure the same three quantities with the calibration
// microbenchmarks and also report Table 2's node parameters for reference.
// Calibration is the experiment here, so it runs as a cached grid point.
#include <cstdio>

#include "common.hpp"
#include "models/calibration.hpp"
#include "net/barrier.hpp"

namespace {

using namespace qsm;

int run(int argc, const char* const* argv) {
  support::ArgParser args("bench_table3_network",
                          "Table 3: raw vs observed network performance");
  bench::register_common_flags(args);
  args.flag_i64("words", 1 << 15, "bulk transfer size per node (words)");
  if (!args.parse(argc, argv)) return 0;
  const auto cfg = bench::read_common_flags(args);
  const auto words = static_cast<std::uint64_t>(args.i64("words"));

  harness::SweepRunner runner(bench::runner_options(cfg, "table3_network"));
  harness::KeyBuilder key("calibration");
  key.add("machine", cfg.machine);
  key.add("words", words);
  runner.submit(key.build(), [&cfg, words] {
    const auto c = models::calibrate(cfg.machine, words);
    harness::PointResult out;
    out.metrics["put_cpw"] = c.put_cpw;
    out.metrics["get_cpw"] = c.get_cpw;
    out.metrics["phase_overhead"] = static_cast<double>(c.phase_overhead);
    out.metrics["barrier"] = static_cast<double>(c.barrier);
    return out;
  });
  const auto results = runner.run_all();

  models::Calibration cal;
  cal.p = cfg.machine.p;
  cal.put_cpw = results[0].metric("put_cpw");
  cal.get_cpw = results[0].metric("get_cpw");
  cal.phase_overhead =
      static_cast<support::cycles_t>(results[0].metric("phase_overhead"));
  cal.barrier = static_cast<support::cycles_t>(results[0].metric("barrier"));
  cal.word_bytes = cfg.machine.sw.word_bytes;
  const auto& clk = cfg.machine.cpu.clock;

  std::printf("== Table 3: raw hardware vs observed (machine %s) ==\n\n",
              cfg.machine.name.c_str());

  support::TextTable node({"node parameter", "setting"});
  node.add_row({std::string("clock frequency"),
                std::to_string(static_cast<long long>(clk.hz / 1e6)) + " MHz"});
  node.add_row({std::string("L1 cache"),
                std::to_string(cfg.machine.cpu.l1_bytes / 1024) + " KB, " +
                    std::to_string(cfg.machine.cpu.l1_hit) + " cycle hit"});
  node.add_row({std::string("L2 cache"),
                std::to_string(cfg.machine.cpu.l2_bytes / 1024) + " KB, " +
                    std::to_string(cfg.machine.cpu.l2_hit) + " cycle hit"});
  node.add_row({std::string("L2 miss"),
                std::to_string(cfg.machine.cpu.mem_access) + " cycles"});
  bench::emit(node, cfg);

  support::TextTable table({"parameter", "hardware", "observed (HW+SW)"});
  table.add_row(
      {std::string("gap g (puts)"),
       std::to_string(cfg.machine.net.gap_cpb) + " cy/B (" +
           std::to_string(static_cast<long long>(
               clk.gap_to_bytes_per_second(cfg.machine.net.gap_cpb) / 1e6)) +
           " MB/s)",
       std::to_string(cal.put_cpb()) + " cy/B"});
  table.add_row({std::string("gap g (gets)"),
                 std::to_string(cfg.machine.net.gap_cpb) + " cy/B",
                 std::to_string(cal.get_cpb()) + " cy/B"});
  table.add_row({std::string("per-message overhead o"),
                 support::with_commas(cfg.machine.net.overhead) + " cy (" +
                     std::to_string(clk.cycles_to_us(cfg.machine.net.overhead)) +
                     " us)",
                 std::string("N/A (batched away)")});
  table.add_row({std::string("latency l"),
                 support::with_commas(cfg.machine.net.latency) + " cy (" +
                     std::to_string(clk.cycles_to_us(cfg.machine.net.latency)) +
                     " us)",
                 std::string("N/A (pipelined away)")});
  table.add_row(
      {std::string("barrier L (" + std::to_string(cfg.machine.p) + " procs)"),
       std::string("N/A"),
       support::with_commas(cal.barrier) + " cy (" +
           std::to_string(clk.cycles_to_us(cal.barrier)) + " us)"});
  table.add_row(
      {std::string("empty sync (plan + barrier)"), std::string("N/A"),
       support::with_commas(cal.phase_overhead) + " cy (" +
           std::to_string(clk.cycles_to_us(cal.phase_overhead)) + " us)"});
  bench::emit(table, cfg);

  std::printf(
      "paper values for this system: 35 cy/B put, 287 cy/B get, 25,500 cy "
      "barrier. expected shape: observed gaps an order of magnitude above "
      "raw hardware; gets well above puts (round trip); barrier in the "
      "tens of thousands of cycles.\n");
  bench::print_runner_stats(runner);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
